//! Configuration of every evaluation setup in the paper.
//!
//! Each `figN_*` function builds the workload + driver configuration for
//! one experimental configuration, so the figure binaries, integration
//! tests and Criterion benches run exactly the same setups.

use hta_cluster::{ClusterConfig, MachineType};
use hta_core::driver::{DriverConfig, RunResult, SystemDriver};
use hta_core::policy::{FixedPolicy, HpaPolicy, HtaConfig, HtaPolicy, ScalingPolicy};
use hta_core::OperatorConfig;
use hta_des::{DigestConfig, Duration};
use hta_forecast::{MpcConfig, MpcPolicy};
use hta_makeflow::Workflow;
use hta_resources::Resources;
use hta_workloads::{
    blast_multistage, blast_single_stage, iobound, BlastParams, IoBoundParams, MultistageParams,
};
use hta_workqueue::master::MasterConfig;
use hta_workqueue::{NetworkFaults, Partition};

/// Which autoscaler drives a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// The paper's contribution.
    Hta,
    /// `HPA(target CPU)` with the given target in `[0, 1]`.
    Hpa(f64),
    /// A fixed pool of N workers.
    Fixed(usize),
    /// Model-predictive control over snapshot/fork what-if branches
    /// (`hta-forecast`, not in the paper).
    Mpc,
}

impl PolicyKind {
    /// Policies that run the HTA-style operator pipeline (warm-up
    /// probing, learned categories, undeclared resources) rather than
    /// trusting declared resources like the HPA/fixed baselines.
    pub fn uses_warmup(self) -> bool {
        matches!(self, PolicyKind::Hta | PolicyKind::Mpc)
    }
}

fn make_policy(
    kind: PolicyKind,
    min_replicas: usize,
    max_replicas: usize,
) -> Box<dyn ScalingPolicy> {
    match kind {
        PolicyKind::Hta => Box::new(HtaPolicy::new(HtaConfig::default())),
        PolicyKind::Hpa(target) => Box::new(HpaPolicy::new(target, min_replicas, max_replicas)),
        PolicyKind::Fixed(n) => Box::new(FixedPolicy::new(n)),
        PolicyKind::Mpc => Box::new(MpcPolicy::new(MpcConfig::default())),
    }
}

/// The paper's evaluation cluster (§VI): 20 × `n1-standard-4`, private
/// registry, Kubernetes 1.13 semantics.
fn paper_cluster(min_nodes: usize, max_nodes: usize, seed: u64) -> ClusterConfig {
    ClusterConfig {
        machine: MachineType::n1_standard_4(),
        min_nodes,
        max_nodes,
        seed,
        ..ClusterConfig::default()
    }
}

// ----------------------------------------------------------------------
// Fig. 2 — HPA target-CPU sweep on BLAST-200
// ----------------------------------------------------------------------

/// The Fig. 2 workload: 200 equal BLAST jobs, requirements known
/// (§III-B: "We assume that the resource requirements of individual jobs
/// are known in advance").
pub fn fig2_workload() -> Workflow {
    blast_single_stage(&BlastParams {
        jobs: 200,
        db_mb: 50.0,
        query_mb: 2.0,
        output_mb: 0.6,
        wall: Duration::from_secs(60),
        wall_jitter: 0.05,
        actual: Resources::cores(1, 3_000, 5_000),
        declared: Some(Resources::cores(1, 3_000, 5_000)),
    })
}

/// Driver config for Fig. 2: a 15-node GKE cluster, 1-core worker pods
/// (up to 60), master outside the cluster.
pub fn fig2_driver(seed: u64) -> DriverConfig {
    DriverConfig {
        cluster: paper_cluster(3, 15, seed),
        master: MasterConfig::default(),
        operator: OperatorConfig {
            warmup: false,
            trust_declared: true,
            learn: true,
            seed,
        },
        worker_request: Resources::new(1000, 3_500, 10_000),
        worker_anti_affinity: false,
        worker_image_mb: 500.0,
        master_in_cluster: false,
        master_request: Resources::ZERO,
        initial_workers: 3,
        max_workers: 60,
        sample_interval: Duration::from_secs(1),
        default_init_time: Duration::from_millis(157_400),
        use_measured_init_time: true,
        node_failures: Vec::new(),
        faults: Default::default(),
        trace_capacity: 0,
        metrics_lag: Duration::from_secs(60),
        max_sim_time: Duration::from_secs(50_000),
    }
}

/// One Fig. 2 configuration (`Config-10/50/99` or the ideal pool).
pub fn fig2_run(kind: PolicyKind, seed: u64) -> RunResult {
    let mut cfg = fig2_driver(seed);
    if let PolicyKind::Fixed(n) = kind {
        // The "ideal scenario": the full pool exists from the start.
        cfg.initial_workers = n;
        cfg.cluster.min_nodes = cfg.cluster.max_nodes;
    }
    let policy = make_policy(kind, 3, cfg.max_workers);
    SystemDriver::new(cfg, fig2_workload(), policy).run()
}

// ----------------------------------------------------------------------
// Fig. 4 — worker-pod sizing on BLAST-100
// ----------------------------------------------------------------------

/// The three §IV-A configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Config {
    /// (a) 15 × 1-vCPU/4 GB worker pods.
    FineGrained,
    /// (b) 5 node-sized workers, resource requirements unknown.
    CoarseUnknown,
    /// (c) 5 node-sized workers, resource requirements known.
    CoarseKnown,
    /// Extension (not in the paper): the fine-grained configuration with
    /// worker-to-worker transfers enabled — the database replicates over
    /// the peer network instead of the master uplink, recovering most of
    /// the fine-grained penalty.
    FineGrainedPeer,
}

/// The Fig. 4 workload: 100 BLAST jobs sharing a cacheable 1.4 GB input,
/// ~600 KB outputs.
pub fn fig4_workload(declared: bool) -> Workflow {
    blast_single_stage(&BlastParams {
        jobs: 100,
        db_mb: 1_400.0,
        query_mb: 2.0,
        output_mb: 0.6,
        wall: Duration::from_secs(40),
        wall_jitter: 0.05,
        actual: Resources::cores(1, 3_000, 5_000),
        declared: declared.then_some(Resources::cores(1, 3_000, 5_000)),
    })
}

/// Finish driver construction: attach a digest when requested, run.
fn finish(driver: SystemDriver, digest: Option<DigestConfig>) -> RunResult {
    match digest {
        Some(d) => driver.with_digest(d).run(),
        None => driver.run(),
    }
}

/// One Fig. 4 run on the fixed 5-node (3 vCPU / 12 GB) cluster.
pub fn fig4_run(config: Fig4Config, seed: u64) -> RunResult {
    fig4_run_with(config, seed, None)
}

/// [`fig4_run`] with an optional event-stream digest (`perf --paranoid`).
pub fn fig4_run_with(config: Fig4Config, seed: u64, digest: Option<DigestConfig>) -> RunResult {
    let machine = MachineType::gke_3cpu_12gb();
    let (workers, worker_request, declared, learn) = match config {
        Fig4Config::FineGrained | Fig4Config::FineGrainedPeer => {
            (15usize, Resources::new(1000, 3_800, 20_000), true, true)
        }
        Fig4Config::CoarseUnknown => (5, machine.allocatable, false, false),
        Fig4Config::CoarseKnown => (5, machine.allocatable, true, true),
    };
    let master = MasterConfig {
        peer_transfers: config == Fig4Config::FineGrainedPeer,
        ..MasterConfig::default()
    };
    let cfg = DriverConfig {
        cluster: ClusterConfig {
            machine,
            min_nodes: 5,
            max_nodes: 5,
            seed,
            ..ClusterConfig::default()
        },
        master,
        operator: OperatorConfig {
            warmup: false,
            trust_declared: declared,
            learn,
            seed,
        },
        worker_request,
        worker_anti_affinity: false,
        worker_image_mb: 500.0,
        master_in_cluster: false,
        master_request: Resources::ZERO,
        initial_workers: workers,
        max_workers: workers,
        sample_interval: Duration::from_secs(1),
        default_init_time: Duration::from_millis(157_400),
        use_measured_init_time: true,
        node_failures: Vec::new(),
        faults: Default::default(),
        trace_capacity: 0,
        metrics_lag: Duration::from_secs(60),
        max_sim_time: Duration::from_secs(20_000),
    };
    let policy = make_policy(PolicyKind::Fixed(workers), workers, workers);
    finish(
        SystemDriver::new(cfg, fig4_workload(declared), policy),
        digest,
    )
}

// ----------------------------------------------------------------------
// Fig. 6 — resource-initialization latency
// ----------------------------------------------------------------------

/// One cold-start measurement: (reservation_s, pull_and_start_s).
#[derive(Debug, Clone, Copy)]
pub struct InitSample {
    /// Machine reservation component (create → scheduled on a node).
    pub reservation_s: f64,
    /// Image pull + container start (scheduled → running).
    pub pull_s: f64,
}

impl InitSample {
    /// End-to-end initialization latency.
    pub fn total_s(&self) -> f64 {
        self.reservation_s + self.pull_s
    }
}

/// Reproduce the Fig. 6 benchmark: `runs` sequential pod creations, each
/// requiring a fresh node (previous pods keep their nodes busy).
pub fn fig6_measurements(runs: usize, seed: u64) -> Vec<InitSample> {
    use hta_cluster::{Cluster, ClusterEvent, PodPhase, PodSpec};
    use hta_des::{EventQueue, SimTime};

    let mut cluster = Cluster::new(ClusterConfig {
        machine: MachineType::n1_standard_4(),
        min_nodes: 0,
        max_nodes: runs + 1,
        seed,
        ..ClusterConfig::default()
    });
    let image = cluster.registry_mut().register("wq-worker:latest", 500.0);
    let mut q: EventQueue<ClusterEvent> = EventQueue::new();
    for (d, e) in cluster.bootstrap(SimTime::ZERO) {
        q.schedule_in(d, e);
    }
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let (pod, fx) = cluster.create_pod(
            q.now(),
            PodSpec {
                request: Resources::cores(4, 14_000, 50_000),
                image,
                group: "bench".into(),
                anti_affinity: false,
            },
        );
        for (d, e) in fx {
            q.schedule_in(d, e);
        }
        // Run until this pod is running.
        for _ in 0..100_000 {
            if cluster
                .pod(pod)
                .is_some_and(|p| p.phase == PodPhase::Running)
            {
                break;
            }
            let Some((now, ev)) = q.pop() else { break };
            for (d, e) in cluster.handle(now, ev) {
                q.schedule_in(d, e);
            }
        }
        let p = cluster.pod(pod).expect("pod exists");
        assert_eq!(p.phase, PodPhase::Running, "pod failed to start");
        let created = p.created_at.as_secs_f64();
        let scheduled = p.scheduled_at.expect("scheduled").as_secs_f64();
        let running = p.running_at.expect("running").as_secs_f64();
        samples.push(InitSample {
            reservation_s: scheduled - created,
            pull_s: running - scheduled,
        });
    }
    samples
}

// ----------------------------------------------------------------------
// Fig. 10 — multistage BLAST under HPA-20 / HPA-50 / HTA
// ----------------------------------------------------------------------

/// The multistage workload (stages of 200/34/164 tasks).
pub fn fig10_workload(declared: bool) -> Workflow {
    let params = if declared {
        MultistageParams::default().declared()
    } else {
        MultistageParams::default()
    };
    blast_multistage(&params)
}

/// Driver config for the §VI evaluation cluster: 20 × n1-standard-4,
/// node-sized (3-core) worker pods, master in-cluster.
pub fn fig10_driver(kind: PolicyKind, seed: u64) -> DriverConfig {
    let hta = kind.uses_warmup();
    DriverConfig {
        cluster: paper_cluster(3, 20, seed),
        master: MasterConfig::default(),
        operator: OperatorConfig {
            warmup: hta,
            trust_declared: !hta,
            learn: true,
            seed,
        },
        worker_request: Resources::cores(3, 12_000, 50_000),
        worker_anti_affinity: false,
        worker_image_mb: 500.0,
        master_in_cluster: true,
        master_request: Resources::new(1000, 4_000, 20_000),
        initial_workers: 3,
        max_workers: 20,
        sample_interval: Duration::from_secs(1),
        default_init_time: Duration::from_millis(157_400),
        use_measured_init_time: true,
        node_failures: Vec::new(),
        faults: Default::default(),
        trace_capacity: 0,
        metrics_lag: Duration::from_secs(60),
        max_sim_time: Duration::from_secs(100_000),
    }
}

/// One Fig. 10 run.
pub fn fig10_run(kind: PolicyKind, seed: u64) -> RunResult {
    fig10_run_with(kind, seed, None)
}

/// [`fig10_run`] with an optional event-stream digest (`perf --paranoid`).
pub fn fig10_run_with(kind: PolicyKind, seed: u64, digest: Option<DigestConfig>) -> RunResult {
    let cfg = fig10_driver(kind, seed);
    let policy = make_policy(kind, 3, cfg.max_workers);
    let workload = fig10_workload(!kind.uses_warmup());
    finish(SystemDriver::new(cfg, workload, policy), digest)
}

/// [`fig10_run`] with a seeded control-plane crash-recovery cycle: the
/// master/operator/policy die mid-ramp, checkpoint-restore after the
/// outage and WAL-replay their decisions. The perf harness tracks this
/// workload (`master-crash-recover300s`) to bound the checkpoint + WAL
/// overhead on the hot path, and `perf --paranoid` replays it bitwise.
pub fn fig10_run_crash_recovery(
    kind: PolicyKind,
    seed: u64,
    digest: Option<DigestConfig>,
) -> RunResult {
    let mut cfg = fig10_driver(kind, seed);
    cfg.faults.control_plane = hta_core::ControlPlaneFaults {
        crash_times: vec![Duration::from_secs(900)],
        outage: Duration::from_secs(60),
        checkpoint_interval: Duration::from_secs(300),
    };
    let policy = make_policy(kind, 3, cfg.max_workers);
    let workload = fig10_workload(!kind.uses_warmup());
    finish(SystemDriver::new(cfg, workload, policy), digest)
}

/// [`fig10_run`] over a degraded control channel: 20 ms message delay
/// (30 % jitter), 0.5 % loss, 60 s heartbeat leases, and a 300 s
/// symmetric partition mid-run. The perf harness tracks this workload
/// (`net-partition300s`) to bound the cost of routing every dispatch /
/// ack / completion / heartbeat through the message channel plus the
/// partition's presumed-dead re-queues, and `perf --paranoid` replays
/// it bitwise.
pub fn fig10_run_net_partition(
    kind: PolicyKind,
    seed: u64,
    digest: Option<DigestConfig>,
) -> RunResult {
    let mut cfg = fig10_driver(kind, seed);
    cfg.faults.network = NetworkFaults {
        delay: Duration::from_millis(20),
        jitter: 0.3,
        loss: 0.005,
        lease: Duration::from_secs(60),
        partitions: vec![Partition {
            start: Duration::from_secs(900),
            duration: Duration::from_secs(300),
            asymmetric: false,
        }],
        ..NetworkFaults::default()
    };
    let policy = make_policy(kind, 3, cfg.max_workers);
    let workload = fig10_workload(!kind.uses_warmup());
    finish(SystemDriver::new(cfg, workload, policy), digest)
}

/// [`fig10_run`] under an injected fault plan (the `forecast` bin's
/// faulted frontier).
pub fn fig10_run_faulted(kind: PolicyKind, seed: u64, faults: hta_core::FaultPlan) -> RunResult {
    let mut cfg = fig10_driver(kind, seed);
    cfg.faults = faults;
    let policy = make_policy(kind, 3, cfg.max_workers);
    let workload = fig10_workload(!kind.uses_warmup());
    SystemDriver::new(cfg, workload, policy).run()
}

// ----------------------------------------------------------------------
// Fig. 11 — I/O-bound workload under HPA-20 / HPA-50 / HTA
// ----------------------------------------------------------------------

/// One Fig. 11 run: 200 `dd` tasks.
pub fn fig11_run(kind: PolicyKind, seed: u64) -> RunResult {
    fig11_run_with(kind, seed, None)
}

/// [`fig11_run`] with an optional event-stream digest (`perf --paranoid`).
pub fn fig11_run_with(kind: PolicyKind, seed: u64, digest: Option<DigestConfig>) -> RunResult {
    fig11_run_opts(kind, seed, digest, None)
}

/// [`fig11_run`] under an injected fault plan (the `forecast` bin's
/// faulted frontier).
pub fn fig11_run_faulted(kind: PolicyKind, seed: u64, faults: hta_core::FaultPlan) -> RunResult {
    fig11_run_opts(kind, seed, None, Some(faults))
}

fn fig11_run_opts(
    kind: PolicyKind,
    seed: u64,
    digest: Option<DigestConfig>,
    faults: Option<hta_core::FaultPlan>,
) -> RunResult {
    let hta = kind.uses_warmup();
    let mut cfg = fig10_driver(kind, seed);
    if let Some(f) = faults {
        cfg.faults = f;
    }
    // The HPA baselines start from the small standing pool they then
    // never grow (CPU stays under every target); HTA starts from the
    // 3-node warm-up pool.
    cfg.initial_workers = if hta { 3 } else { 5 };
    cfg.cluster.min_nodes = if hta { 3 } else { 5 };
    let policy = make_policy(kind, cfg.initial_workers, cfg.max_workers);
    let params = if hta {
        IoBoundParams::default()
    } else {
        IoBoundParams::default().declared()
    };
    finish(SystemDriver::new(cfg, iobound(&params), policy), digest)
}

// ----------------------------------------------------------------------
// Streaming traces — open-loop arrivals (crates/trace)
// ----------------------------------------------------------------------

/// Driver config for the open-loop trace workloads: the §VI cluster
/// grown to 100 nodes so HTA can track the ~39 task/s MMPP plateau —
/// ~156 one-core slots at the ~4 s mean wall time (~211 at the diurnal
/// peak), 3 slots per 3-core/12 GB worker, so the 96-worker quota
/// (288 slots) keeps sustained demand served and the backlog bounded
/// by burst transients rather than growing with the trace. Master
/// in-cluster, 60 s metrics lag.
pub fn trace_driver(seed: u64) -> DriverConfig {
    DriverConfig {
        cluster: paper_cluster(3, 100, seed),
        master: MasterConfig::default(),
        operator: OperatorConfig {
            // Open-loop specs arrive with declared resources filled by
            // the generator; probing a warm-up batch would be
            // meaningless when the client keeps submitting regardless.
            warmup: false,
            trust_declared: true,
            learn: true,
            seed,
        },
        worker_request: Resources::cores(3, 12_000, 50_000),
        worker_anti_affinity: false,
        worker_image_mb: 500.0,
        master_in_cluster: true,
        master_request: Resources::new(1000, 4_000, 20_000),
        initial_workers: 8,
        max_workers: 96,
        sample_interval: Duration::from_secs(1),
        default_init_time: Duration::from_millis(157_400),
        use_measured_init_time: true,
        node_failures: Vec::new(),
        faults: Default::default(),
        trace_capacity: 0,
        metrics_lag: Duration::from_secs(60),
        // blast-1m spans ~25.6 k sim-seconds of arrivals; leave room
        // for the ramp and the drain tail.
        max_sim_time: Duration::from_secs(60_000),
    }
}

/// One open-loop trace run: a synthetic preset streamed through
/// [`SystemDriver::new_traced`] under the HTA policy. The master retires
/// completed task records, so peak memory is bounded by the in-flight
/// set, not the trace length — `blast-1m` (10⁶ tasks) is the headline
/// proof, `trace-50k` the CI-sized stand-in.
pub fn trace_run_with(preset: &str, seed: u64, digest: Option<DigestConfig>) -> RunResult {
    let cfg = trace_driver(seed);
    let source = hta_trace::ArrivalSource::synth(preset, seed).expect("known synth preset");
    let policy = make_policy(PolicyKind::Hta, 3, cfg.max_workers);
    finish(SystemDriver::new_traced(cfg, source, policy), digest)
}

// ----------------------------------------------------------------------
// Ablations
// ----------------------------------------------------------------------

/// HTA ablation variants (design-choice benches called out in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Full HTA (reference).
    Full,
    /// No category learning: every task holds a whole worker for the
    /// entire run (what §IV-A's measurement step buys).
    NoLearning,
    /// No warm-up: all jobs fan out immediately; unknown-resource tasks
    /// flood the exclusive path (what §V-C's probing buys).
    NoWarmup,
    /// Init-time feedback disabled: the estimator always uses a fixed
    /// 30 s window instead of the measured ~157 s (what the informer
    /// tracking buys).
    FrozenInitTime,
    /// Per-worker free lists instead of the paper's aggregate `avaRsrc`
    /// (no phantom fits across capacity fragments).
    PerWorkerEstimator,
}

/// Run one ablation variant on the Fig. 10 multistage workload.
pub fn ablation_run(variant: Ablation, seed: u64) -> RunResult {
    use hta_core::policy::EstimatorMode;
    let mut cfg = fig10_driver(PolicyKind::Hta, seed);
    let mut hta_cfg = HtaConfig::default();
    match variant {
        Ablation::Full => {}
        Ablation::NoLearning => {
            cfg.operator.learn = false;
            cfg.operator.warmup = false;
        }
        Ablation::NoWarmup => {
            cfg.operator.warmup = false;
        }
        Ablation::FrozenInitTime => {
            cfg.use_measured_init_time = false;
            cfg.default_init_time = Duration::from_secs(30);
        }
        Ablation::PerWorkerEstimator => {
            hta_cfg.estimator_mode = EstimatorMode::PerWorker;
        }
    }
    let policy: Box<dyn ScalingPolicy> = Box::new(HtaPolicy::new(hta_cfg));
    SystemDriver::new(cfg, fig10_workload(false), policy).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_latency_matches_calibration() {
        let samples = fig6_measurements(10, 42);
        assert_eq!(samples.len(), 10);
        let totals: Vec<f64> = samples.iter().map(|s| s.total_s()).collect();
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        // Paper: mean 157.4 s, σ 4.2 s.
        assert!((mean - 157.4).abs() < 12.0, "mean={mean}");
        for s in &samples {
            assert!(s.reservation_s > 100.0, "reservation {:?}", s);
            assert!(s.pull_s > 5.0 && s.pull_s < 30.0, "pull {:?}", s);
        }
    }

    #[test]
    fn fig4_workload_sizes() {
        assert_eq!(fig4_workload(true).len(), 100);
        assert!(fig4_workload(false).categories["align"].declared.is_none());
    }

    #[test]
    fn fig4_peer_variant_completes() {
        let r = fig4_run(Fig4Config::FineGrainedPeer, 1);
        assert!(!r.timed_out);
        assert_eq!(r.summary.peak_workers, 15.0);
    }

    #[test]
    fn fig2_ideal_beats_every_hpa_config() {
        let ideal = fig2_run(PolicyKind::Fixed(60), 1);
        let hpa10 = fig2_run(PolicyKind::Hpa(0.10), 1);
        let hpa99 = fig2_run(PolicyKind::Hpa(0.99), 1);
        assert!(!ideal.timed_out && !hpa10.timed_out && !hpa99.timed_out);
        assert!(ideal.summary.runtime_s < hpa10.summary.runtime_s);
        assert!(hpa10.summary.runtime_s < hpa99.summary.runtime_s);
        assert!(
            hpa99.summary.peak_workers <= 3.0,
            "Config-99 must never scale (peak {})",
            hpa99.summary.peak_workers
        );
    }

    #[test]
    fn fig11_headline_holds_for_any_seed() {
        for seed in [3, 77] {
            let hpa = fig11_run(PolicyKind::Hpa(0.20), seed);
            let hta = fig11_run(PolicyKind::Hta, seed);
            assert!(
                hta.summary.runtime_s * 1.5 < hpa.summary.runtime_s,
                "seed {seed}: HTA {} vs HPA {}",
                hta.summary.runtime_s,
                hpa.summary.runtime_s
            );
        }
    }

    #[test]
    fn fig10_headline_holds_for_any_seed() {
        for seed in [3, 77] {
            let hpa = fig10_run(PolicyKind::Hpa(0.20), seed);
            let hta = fig10_run(PolicyKind::Hta, seed);
            // Waste at least halved; runtime within +40 %.
            assert!(
                hta.summary.accumulated_waste_core_s * 2.0 < hpa.summary.accumulated_waste_core_s,
                "seed {seed}: waste {} vs {}",
                hta.summary.accumulated_waste_core_s,
                hpa.summary.accumulated_waste_core_s
            );
            assert!(
                hta.summary.runtime_s < hpa.summary.runtime_s * 1.4,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fig10_workload_shape() {
        let wf = fig10_workload(true);
        assert_eq!(wf.len(), 398);
        assert!(wf.categories["align"].declared.is_some());
    }
}
