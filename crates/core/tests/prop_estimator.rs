//! Property tests for Algorithm 1: the scale decision is always bounded
//! and sane across arbitrary queue states.

use hta_core::{estimate, EstimatorInput, RunningTask, WaitingTask};
use hta_des::Duration;
use hta_resources::Resources;
use proptest::prelude::*;

fn worker_unit() -> Resources {
    Resources::cores(3, 12_000, 50_000)
}

fn arb_task_res() -> impl Strategy<Value = Resources> {
    (1i64..4, 100i64..8_000, 0i64..30_000).prop_map(|(c, m, d)| Resources::new(c * 1000, m, d))
}

fn arb_input() -> impl Strategy<Value = EstimatorInput> {
    let running = proptest::collection::vec(
        (0u64..600, arb_task_res()).prop_map(|(rem, alloc)| RunningTask {
            remaining: Duration::from_secs(rem),
            allocation: alloc,
        }),
        0..40,
    );
    let waiting = proptest::collection::vec(
        (1u64..600, arb_task_res()).prop_map(|(exec, res)| WaitingTask {
            resources: res,
            exec: Duration::from_secs(exec),
        }),
        0..60,
    );
    let workers = proptest::collection::vec(Just(worker_unit()), 0..20);
    (running, waiting, workers, 30u64..400).prop_map(|(running, waiting, active_workers, init)| {
        EstimatorInput {
            rsrc_init_time: Duration::from_secs(init),
            default_cycle: Duration::from_secs(30),
            running,
            waiting,
            active_workers,
            worker_unit: worker_unit(),
            overflow: Vec::new(),
        }
    })
}

proptest! {
    /// The delta never drains more workers than exist and never creates
    /// more workers than waiting tasks (each task needs at most one).
    #[test]
    fn delta_is_bounded(input in arb_input()) {
        let d = estimate(&input);
        prop_assert!(
            -d.delta <= input.active_workers.len() as i64,
            "drained {} of {} workers",
            -d.delta,
            input.active_workers.len()
        );
        prop_assert!(
            d.delta <= input.waiting.len() as i64,
            "created {} for {} waiting",
            d.delta,
            input.waiting.len()
        );
    }

    /// The next-action delay is always positive and bounded by the larger
    /// of init time, default cycle and the longest simulated completion.
    #[test]
    fn next_action_is_sane(input in arb_input()) {
        let d = estimate(&input);
        prop_assert!(d.next_action > Duration::ZERO || d.next_action == input.default_cycle);
        let horizon = input
            .rsrc_init_time
            .max(input.default_cycle)
            .saturating_add(Duration::from_secs(1200)); // max exec 600s chains
        prop_assert!(
            d.next_action <= horizon.saturating_mul(2),
            "next action {:?} beyond any horizon",
            d.next_action
        );
    }

    /// With no workers and a non-empty waiting queue of worker-sized
    /// tasks, the estimator asks for exactly one worker per task.
    #[test]
    fn exclusive_tasks_get_one_worker_each(n in 1usize..30) {
        let input = EstimatorInput {
            rsrc_init_time: Duration::from_secs(157),
            default_cycle: Duration::from_secs(30),
            running: vec![],
            waiting: vec![
                WaitingTask {
                    resources: worker_unit(),
                    exec: Duration::from_secs(60)
                };
                n
            ],
            active_workers: vec![],
            worker_unit: worker_unit(),
            overflow: Vec::new(),
        };
        prop_assert_eq!(estimate(&input).delta, n as i64);
    }

    /// With a *homogeneous* waiting queue (the HTC case: jobs in one
    /// category are near-identical copies), adding a worker never
    /// increases the scale-up demand. (With heterogeneous tasks first-fit
    /// packing has classic anomalies where extra capacity reshuffles the
    /// dispatch order into a worse-packing residue, so monotonicity only
    /// holds per category.)
    #[test]
    fn more_workers_never_increase_delta_for_homogeneous_queues(
        n_waiting in 1usize..60,
        n_workers in 0usize..10,
        exec in 10u64..500,
        cores in 1i64..4,
    ) {
        let task = WaitingTask {
            resources: Resources::new(cores * 1000, 2_000, 4_000),
            exec: Duration::from_secs(exec),
        };
        let mk = |workers: usize| EstimatorInput {
            rsrc_init_time: Duration::from_secs(157),
            default_cycle: Duration::from_secs(30),
            running: vec![],
            waiting: vec![task; n_waiting],
            active_workers: vec![worker_unit(); workers],
            worker_unit: worker_unit(),
            overflow: Vec::new(),
        };
        let base = estimate(&mk(n_workers)).delta;
        let with_extra = estimate(&mk(n_workers + 1)).delta;
        if base > 0 {
            prop_assert!(
                with_extra <= base,
                "delta grew from {base} to {with_extra} after adding a worker"
            );
        }
    }

    /// Determinism: the same input always yields the same decision.
    #[test]
    fn estimator_is_deterministic(input in arb_input()) {
        prop_assert_eq!(estimate(&input), estimate(&input));
    }
}
