//! Lossy-control-plane property harness: for random workloads × network
//! fault plans (delay, loss, duplication, reordering, partitions,
//! heartbeat leases), a run over the degraded channel must terminate with
//! the *identical* completed-task set as its fault-free twin — exactly
//! once per task, no zombie double-completions, no lost work — and do so
//! bitwise-reproducibly per seed. A salt-0 what-if fork taken while a
//! partition is actively cutting the link must replay its parent exactly.

use hta_cluster::{ClusterConfig, MachineType};
use hta_core::driver::{DriverConfig, RunResult, SystemDriver};
use hta_core::operator::OperatorConfig;
use hta_core::policy::FixedPolicy;
use hta_core::whatif::{BranchSpec, WhatIf};
use hta_core::{FaultPlan, ScaleAction};
use hta_des::{Duration, SimTime};
use hta_makeflow::{CategoryProfile, Job, JobId, SimProfile, Workflow};
use hta_resources::Resources;
use hta_workqueue::master::MasterConfig;
use hta_workqueue::{NetworkFaults, Partition};
use proptest::prelude::*;

fn workload(jobs: u64, wall_s: u64) -> Workflow {
    let jobs: Vec<Job> = (0..jobs)
        .map(|i| Job {
            id: JobId(i),
            category: "stage".into(),
            command: format!("work {i}"),
            inputs: vec!["db".into()],
            outputs: vec![format!("out.{i}")],
        })
        .collect();
    let profile = CategoryProfile {
        name: "stage".into(),
        declared: Some(Resources::cores(1, 2_000, 2_000)),
        sim: SimProfile {
            wall: Duration::from_secs(wall_s),
            cpu_fraction: 0.9,
            actual: Resources::cores(1, 2_000, 2_000),
            output_mb: 0.5,
            wall_jitter: 0.0,
            heavy_tail: false,
        },
    };
    Workflow::from_jobs(jobs, vec![profile])
        .expect("single-stage workflow is well-formed")
        .with_source_file("db", 80.0, true)
}

fn cfg(seed: u64, net: NetworkFaults) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig {
            machine: MachineType::custom("m4", Resources::cores(4, 16_000, 100_000)),
            min_nodes: 2,
            max_nodes: 6,
            node_provision_mean: Duration::from_secs(150),
            node_provision_sd: Duration::from_secs(2),
            controller_interval: Duration::from_secs(10),
            node_idle_timeout: Duration::from_secs(120),
            serialize_provisioning: true,
            registry_bandwidth_mbps: 50.0,
            image_pull_jitter: 0.0,
            pod_start_delay: Duration::from_secs(1),
            preemption_mean_lifetime: None,
            faults: Default::default(),
            seed,
        },
        master: MasterConfig {
            egress_base_mbps: 200.0,
            egress_overhead_per_flow: 0.0,
            fast_abort_multiplier: None,
            peer_transfers: false,
            peer_bandwidth_mbps: 2_000.0,
            faults: Default::default(),
            net: Default::default(),
            retire_completed: false,
        },
        operator: OperatorConfig {
            warmup: false,
            trust_declared: true,
            learn: true,
            seed: seed.wrapping_add(1),
        },
        worker_request: Resources::cores(3, 12_000, 50_000),
        worker_anti_affinity: false,
        worker_image_mb: 250.0,
        master_in_cluster: true,
        master_request: Resources::new(1000, 2_000, 5_000),
        initial_workers: 2,
        max_workers: 6,
        sample_interval: Duration::from_secs(1),
        default_init_time: Duration::from_secs(157),
        use_measured_init_time: true,
        node_failures: Vec::new(),
        faults: FaultPlan {
            seed,
            network: net,
            ..FaultPlan::default()
        },
        trace_capacity: 0,
        metrics_lag: Duration::ZERO,
        max_sim_time: Duration::from_secs(40_000),
    }
}

fn completed_set(r: &RunResult) -> Vec<String> {
    let mut v: Vec<String> = r
        .task_spans
        .iter()
        .filter(|s| s.completed_s.is_some())
        .map(|s| s.label.clone())
        .collect();
    v.sort();
    v
}

/// A random-but-bounded fault plan: every transport fault plus an
/// optional partition episode and an optional heartbeat lease.
#[allow(clippy::type_complexity)]
fn arb_net() -> impl Strategy<Value = NetworkFaults> {
    (
        0u64..200,                                              // delay ms
        0.0f64..0.25,                                           // loss
        (0.0f64..0.15, 0.0f64..0.15),                           // duplicate, reorder
        (any::<bool>(), 30u64..280, 10u64..120, any::<bool>()), // partition?
        (any::<bool>(), 30u64..90),                             // lease?
    )
        .prop_map(|(delay_ms, loss, dup_reorder, partition, lease)| {
            let (duplicate, reorder) = dup_reorder;
            let (has_partition, start, dur, asym) = partition;
            let (has_lease, lease_s) = lease;
            NetworkFaults {
                delay: Duration::from_millis(delay_ms),
                jitter: if delay_ms > 0 { 0.3 } else { 0.0 },
                loss,
                duplicate,
                reorder,
                partitions: if has_partition {
                    vec![Partition {
                        start: Duration::from_secs(start),
                        duration: Duration::from_secs(dur),
                        asymmetric: asym,
                    }]
                } else {
                    Vec::new()
                },
                lease: if has_lease {
                    Duration::from_secs(lease_s)
                } else {
                    Duration::ZERO
                },
                ..NetworkFaults::default()
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Any seeded network-fault plan — loss, duplication, reordering,
    /// partitions, lease expiries, zombie fencing — terminates with the
    /// same completed-task set as the fault-free twin, bitwise
    /// reproducibly per seed.
    #[test]
    fn lossy_channel_matches_fault_free_twin(
        seed in 0u64..1_000,
        jobs in 4u64..16,
        wall_s in 20u64..90,
        net in arb_net(),
    ) {
        let baseline = SystemDriver::new(
            cfg(seed, NetworkFaults::default()),
            workload(jobs, wall_s),
            Box::new(FixedPolicy::new(3)),
        )
        .run();
        prop_assert!(!baseline.timed_out);

        let faulted = || {
            SystemDriver::new(
                cfg(seed, net.clone()),
                workload(jobs, wall_s),
                Box::new(FixedPolicy::new(3)),
            )
            .run()
        };
        let a = faulted();
        prop_assert!(!a.timed_out, "degraded run must still terminate");
        // The network loses messages, not work: identical terminal
        // completed-task set, exactly once per task.
        prop_assert_eq!(completed_set(&a), completed_set(&baseline));
        prop_assert_eq!(a.jobs_failed, baseline.jobs_failed);
        prop_assert_eq!(a.jobs_abandoned, baseline.jobs_abandoned);
        // Accounting stays self-consistent: fault-free transport implies
        // zero channel counters; an expired lease implies liveness was on.
        if !net.transport_active() {
            prop_assert_eq!(a.summary.faults.msgs_dropped, 0);
            prop_assert_eq!(a.summary.faults.msgs_duplicated, 0);
            prop_assert_eq!(a.summary.faults.msgs_reordered, 0);
        }
        if a.summary.faults.leases_expired > 0 {
            prop_assert!(net.lease > Duration::ZERO);
        }
        // Bitwise per-seed reproducibility of the degraded run.
        let b = faulted();
        prop_assert_eq!(&a.summary, &b.summary);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.makespan_s, b.makespan_s);
    }

    /// A salt-0 no-action fork taken while a partition is actively
    /// cutting the control link replays the parent's own future exactly:
    /// the branch sees the same in-flight retransmits, the same partition
    /// healing, the same re-queues.
    #[test]
    fn salt_zero_fork_under_active_partition_replays_parent(
        seed in 0u64..500,
        jobs in 4u64..12,
        wall_s in 30u64..90,
        start_s in 60u64..200,
        dur_s in 30u64..120,
        asym in any::<bool>(),
        into_s in 5u64..25,
        horizon_s in 120u64..600,
    ) {
        let net = NetworkFaults {
            delay: Duration::from_millis(25),
            jitter: 0.3,
            loss: 0.05,
            partitions: vec![Partition {
                start: Duration::from_secs(start_s),
                duration: Duration::from_secs(dur_s),
                asymmetric: asym,
            }],
            lease: Duration::from_secs(45),
            ..NetworkFaults::default()
        };
        let mut parent = SystemDriver::new(
            cfg(seed, net),
            workload(jobs, wall_s),
            Box::new(FixedPolicy::new(3)),
        );
        // Fork strictly inside the partition window.
        let fork_time = SimTime::ZERO + Duration::from_secs(start_s + into_s.min(dur_s - 1));
        parent.advance_until(fork_time);
        let outcome = parent.branch(&BranchSpec {
            salt: 0,
            initial_action: ScaleAction::None,
            horizon: Duration::from_secs(horizon_s),
            max_events: 400_000,
        });
        let before = parent.completed_tasks();
        parent.advance_until(fork_time + Duration::from_secs(horizon_s));
        let parent_delta = parent.completed_tasks() - before;
        prop_assert_eq!(
            outcome.completed_delta, parent_delta,
            "salt-0 branch diverged from its parent under an active partition"
        );
    }
}
