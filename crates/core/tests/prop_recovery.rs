//! Chaos-recovery property harness: for random workloads × crash points,
//! a run whose control plane crashes and recovers must terminate with the
//! *identical* completed-task set as its crash-free twin, with matching
//! cost accounting, bitwise-reproducibly per seed — plus the
//! bounded-amnesia contract (a crash replays at most one checkpoint
//! interval of WAL records on top of its checkpoint).

use hta_cluster::{ClusterConfig, MachineType};
use hta_core::driver::{DriverConfig, RunResult, SystemDriver};
use hta_core::operator::OperatorConfig;
use hta_core::policy::FixedPolicy;
use hta_core::{ControlPlaneFaults, FaultPlan};
use hta_des::Duration;
use hta_makeflow::{CategoryProfile, Job, JobId, SimProfile, Workflow};
use hta_resources::Resources;
use hta_workqueue::master::MasterConfig;
use proptest::prelude::*;

fn workload(jobs: u64, wall_s: u64) -> Workflow {
    let jobs: Vec<Job> = (0..jobs)
        .map(|i| Job {
            id: JobId(i),
            category: "stage".into(),
            command: format!("work {i}"),
            inputs: vec!["db".into()],
            outputs: vec![format!("out.{i}")],
        })
        .collect();
    let profile = CategoryProfile {
        name: "stage".into(),
        declared: Some(Resources::cores(1, 2_000, 2_000)),
        sim: SimProfile {
            wall: Duration::from_secs(wall_s),
            cpu_fraction: 0.9,
            actual: Resources::cores(1, 2_000, 2_000),
            output_mb: 0.5,
            wall_jitter: 0.0,
            heavy_tail: false,
        },
    };
    Workflow::from_jobs(jobs, vec![profile])
        .expect("single-stage workflow is well-formed")
        .with_source_file("db", 80.0, true)
}

fn cfg(seed: u64) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig {
            machine: MachineType::custom("m4", Resources::cores(4, 16_000, 100_000)),
            min_nodes: 2,
            max_nodes: 6,
            node_provision_mean: Duration::from_secs(150),
            node_provision_sd: Duration::from_secs(2),
            controller_interval: Duration::from_secs(10),
            node_idle_timeout: Duration::from_secs(120),
            serialize_provisioning: true,
            registry_bandwidth_mbps: 50.0,
            image_pull_jitter: 0.0,
            pod_start_delay: Duration::from_secs(1),
            preemption_mean_lifetime: None,
            faults: Default::default(),
            seed,
        },
        master: MasterConfig {
            egress_base_mbps: 200.0,
            egress_overhead_per_flow: 0.0,
            fast_abort_multiplier: None,
            peer_transfers: false,
            peer_bandwidth_mbps: 2_000.0,
            faults: Default::default(),
            net: Default::default(),
            retire_completed: false,
        },
        operator: OperatorConfig {
            warmup: false,
            trust_declared: true,
            learn: true,
            seed: seed.wrapping_add(1),
        },
        worker_request: Resources::cores(3, 12_000, 50_000),
        worker_anti_affinity: false,
        worker_image_mb: 250.0,
        master_in_cluster: true,
        master_request: Resources::new(1000, 2_000, 5_000),
        initial_workers: 2,
        max_workers: 6,
        sample_interval: Duration::from_secs(1),
        default_init_time: Duration::from_secs(157),
        use_measured_init_time: true,
        node_failures: Vec::new(),
        faults: FaultPlan::default(),
        trace_capacity: 0,
        metrics_lag: Duration::ZERO,
        max_sim_time: Duration::from_secs(20_000),
    }
}

fn completed_set(r: &RunResult) -> Vec<String> {
    let mut v: Vec<String> = r
        .task_spans
        .iter()
        .filter(|s| s.completed_s.is_some())
        .map(|s| s.label.clone())
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash at a uniformly random instant: the recovered run terminates
    /// with the same completed-task set and cost accounting as the
    /// crash-free baseline, reproducibly per seed.
    #[test]
    fn crash_recovery_matches_crash_free_baseline(
        seed in 0u64..1_000,
        jobs in 4u64..20,
        wall_s in 20u64..90,
        crash_s in 20u64..260,
        outage_s in 10u64..60,
        interval_s in 30u64..90,
    ) {
        let baseline =
            SystemDriver::new(cfg(seed), workload(jobs, wall_s), Box::new(FixedPolicy::new(3)))
                .run();
        prop_assert!(!baseline.timed_out);
        let crashed = || {
            let mut c = cfg(seed);
            c.faults.control_plane = ControlPlaneFaults {
                crash_times: vec![Duration::from_secs(crash_s)],
                outage: Duration::from_secs(outage_s),
                checkpoint_interval: Duration::from_secs(interval_s),
            };
            SystemDriver::new(c, workload(jobs, wall_s), Box::new(FixedPolicy::new(3))).run()
        };
        let a = crashed();
        prop_assert!(!a.timed_out, "recovered run must terminate");
        // Identical terminal completed-task set (the crash may or may not
        // have landed inside the workload window; equivalence holds either
        // way).
        prop_assert_eq!(completed_set(&a), completed_set(&baseline));
        // Cost accounting: exactly-once completion, no failure leakage.
        prop_assert_eq!(a.jobs_failed, baseline.jobs_failed);
        prop_assert_eq!(a.jobs_abandoned, baseline.jobs_abandoned);
        prop_assert_eq!(
            a.task_spans.iter().filter(|s| s.completed_s.is_some()).count(),
            baseline.task_spans.iter().filter(|s| s.completed_s.is_some()).count(),
            "completed-task accounting must match"
        );
        // Bounded amnesia: every recovery restored a checkpoint at most
        // one interval old and was re-queued exactly once per orphan.
        for rep in &a.recoveries {
            prop_assert!(rep.amnesia_window_s() <= interval_s as f64 + 1e-9);
            prop_assert_eq!(rep.outage_s(), outage_s as f64);
        }
        if a.summary.faults.master_crashes > 0 {
            prop_assert!(a.summary.faults.checkpoints_taken >= 2);
        }
        // Bitwise per-seed reproducibility of the crashed run.
        let b = crashed();
        prop_assert_eq!(&a.summary, &b.summary);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.makespan_s, b.makespan_s);
        prop_assert_eq!(&a.recoveries, &b.recoveries);
    }
}
