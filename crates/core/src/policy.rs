//! Scaling policies.
//!
//! The driver evaluates one [`ScalingPolicy`] on a cadence the policy
//! itself chooses (HTA: the latest resource-initialization time, §V-C
//! "time intervals between two resizing actions is always set as the
//! latest resource initialization time"; HPA: the 15 s sync period).
//!
//! The action type distinguishes HTA's **drain** (graceful, via Work
//! Queue) from HPA's **kill** (pod deletion, interrupting jobs) — the
//! §II-C deployment difference the paper builds its middleware around.

use hta_cluster::{Hpa, HpaConfig};
use hta_des::{CategoryId, Duration, Interner, SimTime};
use hta_resources::Resources;
use hta_workqueue::master::QueueStatus;

use crate::category_stats::CategoryStats;
use crate::estimator::{
    estimate, estimate_per_worker, EstimatorInput, RunningTask, ScaleDecision, WaitingTask,
};

/// Which capacity model Algorithm 1 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorMode {
    /// The paper's scalar `avaRsrc` (aggregate free capacity).
    #[default]
    Aggregate,
    /// Per-worker free lists (no phantom fits across fragments).
    PerWorker,
}

/// What the driver should do to the worker-pod pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Leave the pool alone.
    None,
    /// Create this many worker pods.
    CreateWorkers(usize),
    /// Gracefully drain this many workers (HTA).
    DrainWorkers(usize),
    /// Delete this many worker pods outright (HPA eviction).
    KillWorkers(usize),
}

/// Snapshot handed to a policy at each evaluation.
#[derive(Debug, Clone)]
pub struct PolicyContext<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Work Queue state (waiting/running/workers).
    pub queue: &'a QueueStatus,
    /// The master's category interner (resolves the ids in `queue` and
    /// `held_jobs` back to names at output boundaries).
    pub interner: &'a Interner,
    /// Jobs the operator is still holding back (warm-up): they are demand
    /// the queue does not show. `(category, count)` pairs.
    pub held_jobs: &'a [(CategoryId, usize)],
    /// Per-category learned statistics.
    pub stats: &'a CategoryStats,
    /// Latest measured resource-initialization time.
    pub init_time: Duration,
    /// Capacity of one worker pod.
    pub worker_unit: Resources,
    /// Worker pods alive in the cluster (pending + running).
    pub live_worker_pods: usize,
    /// Worker pods still pending (created, no node / image yet).
    pub pending_worker_pods: usize,
    /// Mean worker CPU utilization, `None` when no workers are connected.
    pub utilization: Option<f64>,
    /// Hard cap on worker pods (cluster quota).
    pub max_workers: usize,
    /// True once the workflow has no more jobs (clean-up stage).
    pub workload_done: bool,
    /// Age of the freshest worker telemetry behind this snapshot. Zero
    /// unless heartbeat liveness is on and worker reports have actually
    /// stopped arriving (e.g. a network partition): the policy inputs are
    /// then a picture of the past, and scaling on them would thrash.
    pub telemetry_age: Duration,
}

/// A worker-pool scaling policy.
pub trait ScalingPolicy {
    /// Policy name for reports.
    fn name(&self) -> String;
    /// Decide an action and when to be called next.
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> (ScaleAction, Duration);
    /// The most recent desired worker-pod count (for the Fig. 2 series).
    fn desired(&self) -> usize;
    /// Clone into a boxed trait object. Policies ride inside the driver,
    /// and the driver's snapshot/fork capability deep-clones everything it
    /// owns — so every policy must be cloneable behind the trait.
    fn clone_box(&self) -> Box<dyn ScalingPolicy>;
    /// Decide with access to a counterfactual world (see
    /// [`WhatIf`](crate::whatif::WhatIf)). Classic feedback policies
    /// ignore the world; the model-predictive policy in `crates/forecast`
    /// overrides this to evaluate candidate actions by forking branches.
    fn decide_with_world(
        &mut self,
        ctx: &PolicyContext<'_>,
        world: &dyn crate::whatif::WhatIf,
    ) -> (ScaleAction, Duration) {
        let _ = world;
        self.decide(ctx)
    }
}

impl Clone for Box<dyn ScalingPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ----------------------------------------------------------------------
// HTA
// ----------------------------------------------------------------------

/// Tuning for [`HtaPolicy`].
#[derive(Debug, Clone)]
pub struct HtaConfig {
    /// Re-evaluation interval when the estimator has nothing to do.
    pub default_cycle: Duration,
    /// Expected execution time for categories with no measurement yet.
    pub default_exec: Duration,
    /// Lower bound between evaluations (avoid zero-delay loops).
    pub min_interval: Duration,
    /// Upper bound between evaluations (stay responsive to new stages).
    pub max_interval: Duration,
    /// Capacity model for the estimator (ablation knob).
    pub estimator_mode: EstimatorMode,
    /// Standby floor: never drain below this many worker pods while the
    /// workload is running (a production guardrail against the
    /// probe/stage-boundary churn; 0 = paper behaviour).
    pub min_pool: usize,
    /// At most this many workers drained per decision (rate limit; the
    /// next cycle re-evaluates). `usize::MAX` = paper behaviour.
    pub max_drain_per_cycle: usize,
    /// Telemetry staleness bound: when the context's `telemetry_age`
    /// exceeds it, the policy freezes (holds the pool) instead of acting
    /// on a stale picture of the cluster — graceful degradation during a
    /// network partition rather than scale thrash.
    pub staleness_bound: Duration,
    /// At most this many waiting tasks enter Algorithm 1's forward
    /// simulation (its cost is quadratic in the input). The truncated
    /// tail is not dropped: it is summarized into the estimator's
    /// `overflow` groups, which suppress scale-down and size scale-up
    /// arithmetically — so an open-loop backlog of hundreds of thousands
    /// still saturates the decision at "scale out to the quota" while
    /// each decision stays O(cap²). Every closed workflow workload
    /// (queues of a few hundred) fits under the cap and is bit-exact.
    pub estimator_queue_cap: usize,
}

impl Default for HtaConfig {
    fn default() -> Self {
        HtaConfig {
            default_cycle: Duration::from_secs(30),
            default_exec: Duration::from_secs(60),
            min_interval: Duration::from_secs(5),
            max_interval: Duration::from_secs(120),
            estimator_mode: EstimatorMode::Aggregate,
            min_pool: 0,
            max_drain_per_cycle: usize::MAX,
            staleness_bound: Duration::from_secs(60),
            estimator_queue_cap: 1024,
        }
    }
}

/// The paper's well-informed feedback autoscaler.
#[derive(Debug, Clone)]
pub struct HtaPolicy {
    cfg: HtaConfig,
    last_desired: usize,
}

impl HtaPolicy {
    /// A fresh policy.
    pub fn new(cfg: HtaConfig) -> Self {
        HtaPolicy {
            cfg,
            last_desired: 0,
        }
    }

    /// Build the estimator's view from the queue snapshot.
    fn build_input(&self, ctx: &PolicyContext<'_>) -> EstimatorInput {
        let stats = ctx.stats;
        let default_exec = self.cfg.default_exec;

        let running: Vec<RunningTask> = ctx
            .queue
            .running
            .values()
            .map(|r| {
                let mean = stats
                    .estimate(r.cat)
                    .map(|e| e.mean_wall)
                    .unwrap_or(default_exec);
                let elapsed = r
                    .started_at
                    .map(|s| ctx.now.since(s))
                    .unwrap_or(Duration::ZERO);
                RunningTask {
                    remaining: mean.saturating_sub(elapsed),
                    allocation: r.allocation,
                }
            })
            .collect();

        let mut waiting: Vec<WaitingTask> = ctx
            .queue
            .waiting
            .iter()
            .take(self.cfg.estimator_queue_cap)
            .map(|w| {
                let est = stats.estimate(w.cat);
                let resources = w
                    .declared
                    .or(est.map(|e| e.resources))
                    .unwrap_or(ctx.worker_unit);
                let exec = est.map(|e| e.mean_wall).unwrap_or(default_exec);
                WaitingTask { resources, exec }
            })
            .collect();
        // Tasks past the cap stay out of the quadratic simulation but are
        // still demand: group them by planned requirement so the
        // estimator can size scale-up for them arithmetically. One linear
        // pass over the snapshot at policy ticks only (the per-second
        // sampler never walks the queue).
        let mut overflow: Vec<(Resources, usize)> = Vec::new();
        for w in ctx.queue.waiting.iter().skip(self.cfg.estimator_queue_cap) {
            let resources = w
                .declared
                .or(stats.estimate(w.cat).map(|e| e.resources))
                .unwrap_or(ctx.worker_unit);
            match overflow.iter_mut().find(|(r, _)| *r == resources) {
                Some((_, n)) => *n += 1,
                None => overflow.push((resources, 1)),
            }
        }
        // Held jobs whose category is already measured are demand (they
        // enter the queue as soon as the release happens); jobs held for a
        // still-running probe have *unknown* size and contribute nothing —
        // the warm-up stage collects statistics before provisioning for
        // them (§V-C).
        for (cat, count) in ctx.held_jobs {
            if let Some(est) = stats.estimate(*cat) {
                for _ in 0..*count {
                    waiting.push(WaitingTask {
                        resources: est.resources,
                        exec: est.mean_wall,
                    });
                }
            }
        }

        // Active worker capacities; pending worker pods count as full
        // future capacity so one shortage is not provisioned twice.
        let mut active_workers: Vec<Resources> = ctx
            .queue
            .workers
            .values()
            .filter(|w| w.state == hta_workqueue::WorkerState::Active)
            .map(|w| w.capacity)
            .collect();
        active_workers.extend(std::iter::repeat_n(
            ctx.worker_unit,
            ctx.pending_worker_pods,
        ));

        EstimatorInput {
            rsrc_init_time: ctx.init_time,
            default_cycle: self.cfg.default_cycle,
            running,
            waiting,
            active_workers,
            worker_unit: ctx.worker_unit,
            overflow,
        }
    }
}

impl ScalingPolicy for HtaPolicy {
    fn name(&self) -> String {
        "HTA".into()
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> (ScaleAction, Duration) {
        if ctx.workload_done {
            // Clean-up stage: drain everything.
            self.last_desired = 0;
            let live = ctx.live_worker_pods;
            return if live > 0 {
                (ScaleAction::DrainWorkers(live), self.cfg.default_cycle)
            } else {
                (ScaleAction::None, self.cfg.default_cycle)
            };
        }
        if ctx.telemetry_age > self.cfg.staleness_bound {
            // The inputs are a stale picture of the cluster (heartbeats
            // have stopped arriving — likely a partition). Freeze the
            // pool and re-check soon; acting would thrash against a state
            // we cannot observe.
            self.last_desired = ctx.live_worker_pods;
            return (ScaleAction::None, self.cfg.min_interval);
        }
        let input = self.build_input(ctx);
        let ScaleDecision { delta, next_action } = match self.cfg.estimator_mode {
            EstimatorMode::Aggregate => estimate(&input),
            EstimatorMode::PerWorker => estimate_per_worker(&input),
        };
        let next = next_action
            .max(self.cfg.min_interval)
            .min(self.cfg.max_interval);
        let action = if delta > 0 {
            let headroom = ctx.max_workers.saturating_sub(ctx.live_worker_pods);
            let n = (delta as usize).min(headroom);
            self.last_desired = ctx.live_worker_pods + n;
            if n == 0 {
                ScaleAction::None
            } else {
                ScaleAction::CreateWorkers(n)
            }
        } else if delta < 0 {
            let n = (-delta) as usize;
            // Guardrails: the standby floor and the per-cycle drain limit.
            let floor = self.cfg.min_pool.min(ctx.max_workers);
            let drainable = ctx.live_worker_pods.saturating_sub(floor);
            let n = n.min(drainable).min(self.cfg.max_drain_per_cycle);
            self.last_desired = ctx.live_worker_pods - n;
            if n == 0 {
                ScaleAction::None
            } else {
                ScaleAction::DrainWorkers(n)
            }
        } else {
            self.last_desired = ctx.live_worker_pods;
            ScaleAction::None
        };
        (action, next)
    }

    fn desired(&self) -> usize {
        self.last_desired
    }

    fn clone_box(&self) -> Box<dyn ScalingPolicy> {
        Box::new(self.clone())
    }
}

// ----------------------------------------------------------------------
// HPA
// ----------------------------------------------------------------------

/// The Kubernetes HPA baseline driving the worker-pod group.
#[derive(Debug, Clone)]
pub struct HpaPolicy {
    hpa: Hpa,
    label: String,
    last_desired: usize,
}

impl HpaPolicy {
    /// `HPA(target% CPU)` with the given replica bounds.
    pub fn new(target_utilization: f64, min_replicas: usize, max_replicas: usize) -> Self {
        let label = format!("HPA({}% CPU)", (target_utilization * 100.0).round() as u32);
        HpaPolicy {
            hpa: Hpa::new(HpaConfig::with_target(
                target_utilization,
                min_replicas,
                max_replicas,
            )),
            label,
            last_desired: min_replicas,
        }
    }
}

impl ScalingPolicy for HpaPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> (ScaleAction, Duration) {
        let sync = self.hpa.config().sync_interval;
        let desired = self
            .hpa
            .tick(ctx.now, ctx.live_worker_pods, ctx.utilization)
            .min(ctx.max_workers);
        self.last_desired = desired;
        let current = ctx.live_worker_pods;
        let action = if desired > current {
            ScaleAction::CreateWorkers(desired - current)
        } else if desired < current {
            ScaleAction::KillWorkers(current - desired)
        } else {
            ScaleAction::None
        };
        (action, sync)
    }

    fn desired(&self) -> usize {
        self.last_desired
    }

    fn clone_box(&self) -> Box<dyn ScalingPolicy> {
        Box::new(self.clone())
    }
}

// ----------------------------------------------------------------------
// Fixed pool
// ----------------------------------------------------------------------

/// A static pool of `n` workers (the paper's §IV-A fixed configurations).
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    target: usize,
    interval: Duration,
}

impl FixedPolicy {
    /// Hold the pool at `target` workers.
    pub fn new(target: usize) -> Self {
        FixedPolicy {
            target,
            interval: Duration::from_secs(30),
        }
    }
}

impl ScalingPolicy for FixedPolicy {
    fn name(&self) -> String {
        format!("Fixed({})", self.target)
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> (ScaleAction, Duration) {
        if ctx.workload_done {
            return if ctx.live_worker_pods > 0 {
                (
                    ScaleAction::DrainWorkers(ctx.live_worker_pods),
                    self.interval,
                )
            } else {
                (ScaleAction::None, self.interval)
            };
        }
        let action = if ctx.live_worker_pods < self.target {
            ScaleAction::CreateWorkers(self.target - ctx.live_worker_pods)
        } else {
            ScaleAction::None
        };
        (action, self.interval)
    }

    fn desired(&self) -> usize {
        self.target
    }

    fn clone_box(&self) -> Box<dyn ScalingPolicy> {
        Box::new(self.clone())
    }
}

// ----------------------------------------------------------------------
// Hold (no-op)
// ----------------------------------------------------------------------

/// A policy that never acts.
///
/// Two jobs: it is the placeholder the driver swaps into itself while the
/// real policy is deciding (so the policy can borrow the driver as a
/// [`WhatIf`](crate::whatif::WhatIf) world), and — because what-if
/// branches are forked *during* that swap — it is the policy every branch
/// rolls forward under, which gives model-predictive rollouts their
/// constant-input ("apply the candidate action, then hold") semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HoldPolicy;

impl ScalingPolicy for HoldPolicy {
    fn name(&self) -> String {
        "Hold".into()
    }

    fn decide(&mut self, _ctx: &PolicyContext<'_>) -> (ScaleAction, Duration) {
        (ScaleAction::None, Duration::from_secs(3600))
    }

    fn desired(&self) -> usize {
        0
    }

    fn clone_box(&self) -> Box<dyn ScalingPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hta_workqueue::master::{QueueStatus, WaitingSnapshot, WorkerSnapshot};
    use hta_workqueue::{TaskId, WorkerId, WorkerState};

    const ALIGN: CategoryId = CategoryId::from_u32(0);
    const STAGE2: CategoryId = CategoryId::from_u32(1);

    fn it() -> &'static Interner {
        static IT: std::sync::OnceLock<Interner> = std::sync::OnceLock::new();
        IT.get_or_init(|| {
            let mut it = Interner::new();
            it.intern("align"); // ALIGN
            it.intern("stage2"); // STAGE2
            it
        })
    }

    fn worker_unit() -> Resources {
        Resources::cores(3, 12_000, 50_000)
    }

    fn empty_queue() -> QueueStatus {
        QueueStatus::default()
    }

    fn ctx<'a>(
        queue: &'a QueueStatus,
        stats: &'a CategoryStats,
        held: &'a [(CategoryId, usize)],
        live: usize,
    ) -> PolicyContext<'a> {
        PolicyContext {
            now: SimTime::from_secs(100),
            queue,
            interner: it(),
            held_jobs: held,
            stats,
            init_time: Duration::from_secs(157),
            worker_unit: worker_unit(),
            live_worker_pods: live,
            pending_worker_pods: 0,
            utilization: None,
            max_workers: 20,
            workload_done: false,
            telemetry_age: Duration::ZERO,
        }
    }

    fn waiting_queue(n: usize, declared: Option<Resources>) -> QueueStatus {
        QueueStatus {
            waiting: (0..n)
                .map(|i| WaitingSnapshot {
                    id: TaskId(i as u64),
                    cat: ALIGN,
                    declared,
                })
                .collect(),
            ..QueueStatus::default()
        }
    }

    fn idle_workers(n: u64) -> std::collections::BTreeMap<WorkerId, WorkerSnapshot> {
        (0..n)
            .map(|i| {
                (
                    WorkerId(i),
                    WorkerSnapshot {
                        id: WorkerId(i),
                        capacity: worker_unit(),
                        available: worker_unit(),
                        state: WorkerState::Active,
                        tasks: 0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn hta_scales_up_for_declared_backlog() {
        let q = waiting_queue(9, Some(Resources::cores(1, 2_000, 2_000)));
        let stats = CategoryStats::new();
        let mut p = HtaPolicy::new(HtaConfig::default());
        let (action, next) = p.decide(&ctx(&q, &stats, &[], 0));
        assert_eq!(action, ScaleAction::CreateWorkers(3));
        assert_eq!(p.desired(), 3);
        assert_eq!(next, Duration::from_secs(120), "init time clamped to max");
    }

    #[test]
    fn hta_respects_max_workers() {
        let q = waiting_queue(300, Some(Resources::cores(3, 0, 0)));
        let stats = CategoryStats::new();
        let mut p = HtaPolicy::new(HtaConfig::default());
        let (action, _) = p.decide(&ctx(&q, &stats, &[], 18));
        assert_eq!(action, ScaleAction::CreateWorkers(2), "18 + 2 = cap 20");
    }

    #[test]
    fn hta_ignores_held_jobs_of_unmeasured_categories() {
        let q = empty_queue();
        let stats = CategoryStats::new();
        let held = vec![(ALIGN, 6)];
        let mut p = HtaPolicy::new(HtaConfig::default());
        // Unknown category under probe → no demand yet (warm-up collects
        // statistics before provisioning).
        let (action, _) = p.decide(&ctx(&q, &stats, &held, 0));
        assert_eq!(action, ScaleAction::None);
    }

    #[test]
    fn hta_counts_measured_held_jobs_as_demand() {
        use hta_workqueue::task::Measured;
        let q = empty_queue();
        let mut stats = CategoryStats::new();
        stats.observe(
            ALIGN,
            Measured {
                peak: Resources::cores(1, 2_000, 2_000),
                wall: Duration::from_secs(60),
            },
        );
        let held = vec![(ALIGN, 6)];
        let mut p = HtaPolicy::new(HtaConfig::default());
        // 6 measured 1-core jobs pack into 2 three-core workers.
        let (action, _) = p.decide(&ctx(&q, &stats, &held, 0));
        assert_eq!(action, ScaleAction::CreateWorkers(2));
    }

    #[test]
    fn hta_drains_idle_pool_even_during_probe() {
        // Draining while a probe runs is safe here: nodes stay warm for
        // the idle timeout and images are cached, so re-creating workers
        // after the probe completes costs seconds, not an init cycle.
        let mut q = empty_queue();
        q.workers = idle_workers(4);
        let stats = CategoryStats::new();
        let held = vec![(STAGE2, 33)];
        let mut p = HtaPolicy::new(HtaConfig::default());
        let (action, _) = p.decide(&ctx(&q, &stats, &held, 4));
        assert_eq!(action, ScaleAction::DrainWorkers(4));
    }

    #[test]
    fn hta_drains_on_idle_pool() {
        let mut q = empty_queue();
        q.workers = idle_workers(4);
        // One waiting task too big for the aggregate → idle forever.
        q.waiting = vec![WaitingSnapshot {
            id: TaskId(0),
            cat: STAGE2,
            declared: Some(Resources::new(1000, 80_000, 0)),
        }];
        let stats = CategoryStats::new();
        let mut p = HtaPolicy::new(HtaConfig::default());
        let (action, _) = p.decide(&ctx(&q, &stats, &[], 4));
        assert_eq!(action, ScaleAction::DrainWorkers(4));
    }

    #[test]
    fn min_pool_floor_limits_drains() {
        let mut q = empty_queue();
        q.workers = idle_workers(6);
        let stats = CategoryStats::new();
        let mut p = HtaPolicy::new(HtaConfig {
            min_pool: 4,
            ..HtaConfig::default()
        });
        // Fully idle pool of 6 would drain 6; the floor keeps 4.
        let (action, _) = p.decide(&ctx(&q, &stats, &[], 6));
        assert_eq!(action, ScaleAction::DrainWorkers(2));
        assert_eq!(p.desired(), 4);
        // Clean-up ignores the floor.
        let mut done = ctx(&q, &stats, &[], 6);
        done.workload_done = true;
        let (action, _) = p.decide(&done);
        assert_eq!(action, ScaleAction::DrainWorkers(6));
    }

    #[test]
    fn drain_rate_limit_caps_each_cycle() {
        let mut q = empty_queue();
        q.workers = idle_workers(8);
        let stats = CategoryStats::new();
        let mut p = HtaPolicy::new(HtaConfig {
            max_drain_per_cycle: 3,
            ..HtaConfig::default()
        });
        let (action, _) = p.decide(&ctx(&q, &stats, &[], 8));
        assert_eq!(action, ScaleAction::DrainWorkers(3));
    }

    #[test]
    fn hta_cleanup_drains_everything() {
        let q = empty_queue();
        let stats = CategoryStats::new();
        let mut p = HtaPolicy::new(HtaConfig::default());
        let mut c = ctx(&q, &stats, &[], 7);
        c.workload_done = true;
        let (action, _) = p.decide(&c);
        assert_eq!(action, ScaleAction::DrainWorkers(7));
        assert_eq!(p.desired(), 0);
    }

    #[test]
    fn hta_pending_pods_prevent_double_provisioning() {
        let q = waiting_queue(9, Some(Resources::cores(1, 2_000, 2_000)));
        let stats = CategoryStats::new();
        let mut c = ctx(&q, &stats, &[], 3);
        c.pending_worker_pods = 3;
        let mut p = HtaPolicy::new(HtaConfig::default());
        // 3 pending workers × 3 cores absorb the 9 one-core tasks.
        let (action, _) = p.decide(&c);
        assert_eq!(action, ScaleAction::None);
    }

    #[test]
    fn hpa_policy_scales_and_kills() {
        let q = empty_queue();
        let stats = CategoryStats::new();
        let mut p = HpaPolicy::new(0.5, 1, 15);
        assert_eq!(p.name(), "HPA(50% CPU)");
        let mut c = ctx(&q, &stats, &[], 3);
        c.utilization = Some(0.9);
        let (action, next) = p.decide(&c);
        assert_eq!(action, ScaleAction::CreateWorkers(3), "3 → ceil(3×1.8)=6");
        assert_eq!(next, Duration::from_secs(15));
        assert_eq!(p.desired(), 6);
        // Low utilization after the stabilization window → kill.
        let mut c2 = ctx(&q, &stats, &[], 6);
        c2.now = SimTime::from_secs(500);
        c2.utilization = Some(0.05);
        let (action, _) = p.decide(&c2);
        assert!(matches!(action, ScaleAction::KillWorkers(_)));
    }

    #[test]
    fn fixed_policy_tops_up_then_holds() {
        let q = empty_queue();
        let stats = CategoryStats::new();
        let mut p = FixedPolicy::new(5);
        let (action, _) = p.decide(&ctx(&q, &stats, &[], 2));
        assert_eq!(action, ScaleAction::CreateWorkers(3));
        let (action, _) = p.decide(&ctx(&q, &stats, &[], 5));
        assert_eq!(action, ScaleAction::None);
        assert_eq!(p.desired(), 5);
    }
}
