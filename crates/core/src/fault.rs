//! The unified fault-injection plan.
//!
//! One [`FaultPlan`] describes every fault the stack can inject — node
//! crashes and flakiness at the cluster layer, image-pull failures at the
//! kubelet layer, transient exits / OOM kills / stragglers at the task
//! layer — and the driver distributes it into each substrate's own fault
//! knobs ([`hta_cluster::ClusterFaults`], [`hta_workqueue::TaskFaults`]).
//!
//! Every fault draws from the substrate's seeded RNG, so a run with a
//! given `(FaultPlan, DriverConfig, workflow, policy)` is fully
//! deterministic: two same-seed runs produce identical summaries. The
//! default plan injects nothing and leaves every RNG stream untouched,
//! keeping fault-free runs byte-identical with earlier versions.

use hta_cluster::{ClusterConfig, ClusterFaults};
use hta_des::Duration;
use hta_workqueue::{MasterConfig, NetworkFaults, Partition, TaskFaults};
use serde::{Deserialize, Serialize};

/// Control-plane (master + operator) crash faults.
///
/// Unlike the data-plane knobs, these are not distributed into a substrate
/// config: the `SystemDriver` consumes them directly — it checkpoints the
/// control plane every `checkpoint_interval`, kills the master/operator at
/// each instant in `crash_times` (dropping every in-flight dispatch), and
/// restarts them after `outage` by restoring the last checkpoint, replaying
/// the write-ahead decision log, and reconciling against surviving workers.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ControlPlaneFaults {
    /// Instants at which the control plane crashes. Crashes landing before
    /// the master is ready, during cleanup, or inside an ongoing outage
    /// are skipped.
    pub crash_times: Vec<Duration>,
    /// How long the control plane stays down before restarting. Workers
    /// keep running (and finishing tasks into the void) during the outage.
    pub outage: Duration,
    /// Checkpoint cadence; also bounds the WAL replayed at recovery and
    /// the amnesia window of unlogged statistics.
    pub checkpoint_interval: Duration,
}

impl Default for ControlPlaneFaults {
    fn default() -> Self {
        ControlPlaneFaults {
            crash_times: Vec::new(),
            outage: Duration::from_secs(60),
            checkpoint_interval: Duration::from_secs(120),
        }
    }
}

impl ControlPlaneFaults {
    /// True when at least one crash is scheduled.
    pub fn is_active(&self) -> bool {
        !self.crash_times.is_empty()
    }
}

/// A whole-stack fault-injection plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed: the task layer's fault stream derives from it (the
    /// cluster layer keeps its own config seed so its latency streams
    /// stay comparable across fault levels).
    pub seed: u64,
    /// Instants at which the node under a running worker crashes
    /// (deterministic targeted kills, on top of any probabilistic fault).
    pub node_crash_times: Vec<Duration>,
    /// Flaky-node mean time to failure (`None` disables the fault).
    pub node_mttf: Option<Duration>,
    /// Mean time until a flaky node's replacement is ready.
    pub node_mttr: Duration,
    /// Probability one image-pull attempt fails (`ErrImagePull` →
    /// capped-exponential `ImagePullBackOff` retries).
    pub image_pull_fail_rate: f64,
    /// Probability one task attempt exits nonzero partway through.
    pub task_transient_rate: f64,
    /// Probability one task attempt is OOM-killed (retry escalates its
    /// memory allocation).
    pub task_oom_rate: f64,
    /// Straggler speculation threshold (× category mean wall); `None`
    /// disables speculative re-execution.
    pub straggler_factor: Option<f64>,
    /// Failed attempts tolerated per task before permanent failure.
    pub max_task_retries: u32,
    /// Control-plane crash/recovery faults (consumed by the driver, not
    /// distributed via [`apply`](Self::apply)).
    #[serde(default)]
    pub control_plane: ControlPlaneFaults,
    /// Master↔worker control-channel faults: per-message delay, loss,
    /// duplication, reordering, scheduled partition episodes, and the
    /// heartbeat lease. Distributed into [`MasterConfig::net`] with a
    /// seed derived from the plan seed.
    #[serde(default)]
    pub network: NetworkFaults,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x4641_554C, // "FAUL"
            node_crash_times: Vec::new(),
            node_mttf: None,
            node_mttr: Duration::from_secs(120),
            image_pull_fail_rate: 0.0,
            task_transient_rate: 0.0,
            task_oom_rate: 0.0,
            straggler_factor: None,
            max_task_retries: 3,
            control_plane: ControlPlaneFaults::default(),
            network: NetworkFaults::default(),
        }
    }
}

impl FaultPlan {
    /// True when the plan injects anything at all. An inactive plan is
    /// never applied, so configs keep whatever fault knobs were set on
    /// them directly.
    pub fn is_active(&self) -> bool {
        !self.node_crash_times.is_empty()
            || self.node_mttf.is_some()
            || self.image_pull_fail_rate > 0.0
            || self.task_transient_rate > 0.0
            || self.task_oom_rate > 0.0
            || self.straggler_factor.is_some()
            || self.control_plane.is_active()
            || self.network.is_active()
    }

    /// Distribute the plan into the per-substrate fault configs.
    pub fn apply(&self, cluster: &mut ClusterConfig, master: &mut MasterConfig) {
        cluster.faults = ClusterFaults {
            image_pull_fail_rate: self.image_pull_fail_rate,
            node_mttf: self.node_mttf,
            node_mttr: self.node_mttr,
            ..cluster.faults.clone()
        };
        master.faults = TaskFaults {
            transient_rate: self.task_transient_rate,
            oom_rate: self.task_oom_rate,
            max_retries: self.max_task_retries,
            straggler_factor: self.straggler_factor,
            seed: self.seed,
            ..master.faults.clone()
        };
        // Decorrelate the channel's fault stream from the task layer's.
        master.net = NetworkFaults {
            seed: self.seed ^ 0x4E45_5431, // "NET1"
            ..self.network.clone()
        };
    }

    /// A light chaos level: occasional pull failures and transient exits.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            seed,
            image_pull_fail_rate: 0.05,
            task_transient_rate: 0.02,
            ..FaultPlan::default()
        }
    }

    /// A heavy chaos level: flaky nodes on top of frequent pull and task
    /// failures, with OOM kills and speculation enabled, plus a mid-run
    /// control-plane crash the recovery subsystem must survive.
    pub fn heavy(seed: u64) -> Self {
        FaultPlan {
            seed,
            node_mttf: Some(Duration::from_secs(3_600)),
            node_mttr: Duration::from_secs(180),
            image_pull_fail_rate: 0.15,
            task_transient_rate: 0.05,
            task_oom_rate: 0.02,
            straggler_factor: Some(3.0),
            control_plane: ControlPlaneFaults {
                crash_times: vec![Duration::from_secs(900)],
                outage: Duration::from_secs(60),
                checkpoint_interval: Duration::from_secs(120),
            },
            network: NetworkFaults {
                delay: Duration::from_millis(20),
                jitter: 0.3,
                loss: 0.005,
                lease: Duration::from_secs(60),
                partitions: vec![Partition {
                    start: Duration::from_secs(1_500),
                    duration: Duration::from_secs(90),
                    asymmetric: false,
                }],
                ..NetworkFaults::default()
            },
            ..FaultPlan::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive() {
        assert!(!FaultPlan::default().is_active());
    }

    #[test]
    fn any_single_knob_activates() {
        for plan in [
            FaultPlan {
                node_crash_times: vec![Duration::from_secs(100)],
                ..FaultPlan::default()
            },
            FaultPlan {
                node_mttf: Some(Duration::from_secs(600)),
                ..FaultPlan::default()
            },
            FaultPlan {
                image_pull_fail_rate: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                task_transient_rate: 0.05,
                ..FaultPlan::default()
            },
            FaultPlan {
                task_oom_rate: 0.01,
                ..FaultPlan::default()
            },
            FaultPlan {
                straggler_factor: Some(2.0),
                ..FaultPlan::default()
            },
            FaultPlan {
                control_plane: ControlPlaneFaults {
                    crash_times: vec![Duration::from_secs(300)],
                    ..ControlPlaneFaults::default()
                },
                ..FaultPlan::default()
            },
            FaultPlan {
                network: NetworkFaults {
                    loss: 0.01,
                    ..NetworkFaults::default()
                },
                ..FaultPlan::default()
            },
            FaultPlan {
                network: NetworkFaults {
                    lease: Duration::from_secs(60),
                    ..NetworkFaults::default()
                },
                ..FaultPlan::default()
            },
        ] {
            assert!(plan.is_active(), "{plan:?}");
        }
    }

    #[test]
    fn control_plane_arm_defaults_are_inert_but_configured() {
        let cp = ControlPlaneFaults::default();
        assert!(!cp.is_active(), "no crashes scheduled by default");
        assert!(cp.outage > Duration::ZERO);
        assert!(cp.checkpoint_interval > Duration::ZERO);
        // Old serialized plans (no control_plane field) must still load.
        let legacy = r#"{
            "seed": 7, "node_crash_times": [], "node_mttf": null,
            "node_mttr": 120000, "image_pull_fail_rate": 0.0,
            "task_transient_rate": 0.0, "task_oom_rate": 0.0,
            "straggler_factor": null, "max_task_retries": 3
        }"#;
        let plan: FaultPlan = serde_json::from_str(legacy).expect("legacy plan loads");
        assert_eq!(plan.control_plane, ControlPlaneFaults::default());
        assert_eq!(plan.network, NetworkFaults::default());
        assert!(!plan.is_active());
    }

    #[test]
    fn apply_distributes_into_both_layers() {
        let plan = FaultPlan::heavy(42);
        let mut cluster = ClusterConfig::default();
        let mut master = MasterConfig::default();
        plan.apply(&mut cluster, &mut master);
        assert_eq!(cluster.faults.image_pull_fail_rate, 0.15);
        assert_eq!(cluster.faults.node_mttf, Some(Duration::from_secs(3_600)));
        assert_eq!(master.faults.transient_rate, 0.05);
        assert_eq!(master.faults.oom_rate, 0.02);
        assert_eq!(master.faults.straggler_factor, Some(3.0));
        assert_eq!(master.faults.seed, 42);
        // Knobs the plan doesn't own are preserved.
        assert_eq!(cluster.faults.image_pull_max_attempts, 20);
        assert_eq!(master.faults.oom_escalation, 1.5);
        // The network arm lands in the master's channel config with a
        // seed decorrelated from the task-fault stream.
        assert_eq!(master.net.loss, plan.network.loss);
        assert_eq!(master.net.lease, plan.network.lease);
        assert_eq!(master.net.partitions, plan.network.partitions);
        assert_eq!(master.net.seed, 42 ^ 0x4E45_5431);
        assert_ne!(master.net.seed, master.faults.seed);
    }

    #[test]
    fn presets_are_ordered_by_severity() {
        let light = FaultPlan::light(1);
        let heavy = FaultPlan::heavy(1);
        assert!(light.is_active() && heavy.is_active());
        assert!(heavy.image_pull_fail_rate > light.image_pull_fail_rate);
        assert!(heavy.task_transient_rate > light.task_transient_rate);
        assert!(heavy.node_mttf.is_some() && light.node_mttf.is_none());
        assert!(
            heavy.control_plane.is_active() && !light.control_plane.is_active(),
            "only heavy crashes the control plane"
        );
        assert!(
            heavy.network.is_active() && !light.network.is_active(),
            "only heavy degrades the control channel"
        );
        assert!(!heavy.network.partitions.is_empty());
    }
}
