//! Counterfactual ("what-if") branch evaluation.
//!
//! The [`WhatIf`] trait is the narrow waist between the scaling layer and
//! the snapshot/fork machinery: a world that implements it can be asked
//! "what happens over the next horizon if we take this action now?"
//! without the asker knowing anything about drivers, clusters, or event
//! queues. `SystemDriver` implements it by forking itself (deep clone +
//! RNG partition — see `hta_des::SnapshotState`), applying the candidate
//! action, and running the branch forward under a frozen policy with
//! event/time budgets.
//!
//! Everything crossing the trait is plain data, which is what lets the
//! model-predictive policy in `crates/forecast` depend only on this crate
//! while the driver stays free of any forecast dependency.

use hta_des::Duration;

use crate::policy::ScaleAction;

/// A candidate branch to evaluate from the current decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchSpec {
    /// RNG partition salt. `0` replays the parent's own stochastic future
    /// exactly; any other value gives the branch independent — but
    /// reproducible — streams. Ensemble evaluation uses several salts per
    /// candidate action.
    pub salt: u64,
    /// The scaling action applied at the fork instant (the "input" of the
    /// model-predictive rollout; the pool is held constant afterwards).
    pub initial_action: ScaleAction,
    /// How far past the fork instant to simulate.
    pub horizon: Duration,
    /// Hard cap on events processed in the branch (budget guard against
    /// branch explosion; the branch reports [`BranchStop::Budget`] when
    /// it hits the cap).
    pub max_events: u64,
}

/// Why a branch rollout stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchStop {
    /// The workload resolved (completed or degraded gracefully) within
    /// the horizon.
    Finished,
    /// The horizon elapsed.
    Horizon,
    /// The event budget ran out.
    Budget,
    /// The branch's event queue drained (quiescent before the horizon).
    Quiescent,
}

/// What a branch rollout observed. All quantities cover only the branch
/// window `[fork instant, stop instant]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchOutcome {
    /// Simulated seconds the branch ran past the fork instant.
    pub elapsed_s: f64,
    /// Events the branch processed.
    pub events: u64,
    /// Why the rollout stopped.
    pub stop: BranchStop,
    /// True when the workload resolved within the horizon.
    pub finished: bool,
    /// Tasks completed during the branch window.
    pub completed_delta: usize,
    /// Tasks waiting in the queue (plus operator-held jobs) at stop time.
    pub tasks_waiting: usize,
    /// Tasks running at stop time.
    pub tasks_running: usize,
    /// Live worker pods (pending + running) at stop time.
    pub live_worker_pods: usize,
    /// Provisioned capacity integrated over the branch window
    /// (`∫ supply dt`, core·seconds) — the branch's cost.
    pub cost_core_s: f64,
}

impl BranchOutcome {
    /// Tasks not yet completed at stop time (waiting + running).
    pub fn remaining_tasks(&self) -> usize {
        self.tasks_waiting + self.tasks_running
    }
}

/// A world that can evaluate counterfactual futures without being
/// perturbed by them.
///
/// Implementations guarantee **parent isolation**: calling
/// [`WhatIf::branch`] any number of times leaves the receiver's own
/// future bitwise identical to never having called it (the fork-
/// determinism property tests in `crates/forecast` enforce this against
/// the event digest).
pub trait WhatIf {
    /// Fork a branch, apply `spec.initial_action`, simulate to the
    /// horizon (or a budget), and report what happened.
    fn branch(&self, spec: &BranchSpec) -> BranchOutcome;
}
