//! The Makeflow-Kubernetes operator (§V-A).
//!
//! The operator sits between Makeflow and Work Queue: it receives job
//! specifications from the workflow manager (the paper's TCP server),
//! submits ready jobs to the master (the TCP client), and implements the
//! **warm-up stage** (§V-C): "Instead of fanning out all jobs at once,
//! HTA sends out only a portion of jobs with one job per category to
//! collect resource statistics of each category." Once a category's probe
//! completes, its measured resources are applied to every held and queued
//! job of that category.
//!
//! The operator also owns the translation from workflow jobs (file names,
//! category profiles) into Work Queue task specs (file ids, exec models),
//! registering source and intermediate files in the master's catalogue.
//!
//! Category bookkeeping is keyed by interned [`CategoryId`]s: the
//! operator pre-interns every workflow category in the master's interner
//! at construction, so completion handling and warm-up checks never touch
//! category name strings.

use std::collections::BTreeMap;

use hta_des::{CategoryId, Duration, EffectSink, SimRng, SimTime};
use hta_makeflow::{JobId, Workflow};
use hta_resources::Resources;
use hta_workqueue::master::{Master, WqEvent};
use hta_workqueue::task::{ExecModel, Measured, TaskSpec};
use hta_workqueue::{FileId, TaskId};

use crate::recovery::WalRecord;

/// Operator behaviour switches.
#[derive(Debug, Clone)]
pub struct OperatorConfig {
    /// Warm-up probing: hold a category's jobs until one measured probe
    /// completes. HTA runs with this on; the HPA baselines (which assume
    /// resources are known, §III-B) run with it off.
    pub warmup: bool,
    /// Trust the workflow's declared category resources (HPA baselines).
    /// When false, declared resources are ignored and everything is
    /// learned from probes (pure HTA mode).
    pub trust_declared: bool,
    /// Learn category resources from completed jobs. Disabling this
    /// reproduces the paper's Fig. 4(b) configuration: resources stay
    /// unknown for the whole run and every task holds a whole worker.
    pub learn: bool,
    /// Seed for per-job wall-time jitter.
    pub seed: u64,
}

impl Default for OperatorConfig {
    fn default() -> Self {
        OperatorConfig {
            warmup: true,
            trust_declared: false,
            learn: true,
            seed: 0xC0FFEE,
        }
    }
}

/// Category knowledge state used for submission decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CatKnowledge {
    /// Resources known (declared and trusted, or learned).
    Known,
    /// Probe in flight; hold further jobs.
    Probing,
    /// Nothing known; next job becomes the probe.
    Unknown,
}

/// The operator.
#[derive(Debug, Clone)]
pub struct Operator {
    cfg: OperatorConfig,
    workflow: Workflow,
    stats: crate::category_stats::CategoryStats,
    /// Workflow category name → interned id (filled at construction).
    cat_of: BTreeMap<String, CategoryId>,
    /// Learned (or trusted-declared) per-category resources.
    learned: BTreeMap<CategoryId, Resources>,
    probing: BTreeMap<CategoryId, bool>,
    held: BTreeMap<CategoryId, Vec<JobId>>,
    file_ids: BTreeMap<String, FileId>,
    job_for_task: BTreeMap<TaskId, JobId>,
    task_for_job: BTreeMap<JobId, TaskId>,
    next_task: u64,
    rng: SimRng,
    submitted: usize,
    /// Decision records pending collection into the driver's WAL (only
    /// populated while [`record_wal`](Self::record_wal) is on).
    wal_pending: Vec<WalRecord>,
    wal_recording: bool,
}

impl hta_des::SnapshotState for Operator {
    /// Re-partition the submission RNG for a what-if branch; DAG state,
    /// holds and learned resources are untouched.
    fn reseed(&mut self, salt: u64) {
        self.rng = self.rng.partition(salt);
    }
}

impl Operator {
    /// Build an operator over a workflow, registering its files in the
    /// master's catalogue and its categories in the master's interner.
    pub fn new(cfg: OperatorConfig, workflow: Workflow, master: &mut Master) -> Self {
        let rng = SimRng::seed_from_u64(cfg.seed);
        let mut file_ids = BTreeMap::new();
        // Register source files with their metadata; intermediate files
        // with the producing category's output size (non-cacheable).
        let mut names: Vec<String> = Vec::new();
        for job in workflow.dag.jobs() {
            for f in job.inputs.iter().chain(job.outputs.iter()) {
                if !names.contains(f) {
                    names.push(f.clone());
                }
            }
        }
        for name in names {
            let id = match workflow.source_files.get(&name) {
                Some(src) => {
                    master
                        .catalog_mut()
                        .register(name.clone(), src.size_mb, src.cacheable)
                }
                None => match workflow.dag.producer_of(&name) {
                    Some(producer) => {
                        let cat = &workflow
                            .dag
                            .job(producer)
                            .expect("producer exists")
                            .category;
                        let out_mb = workflow
                            .categories
                            .get(cat)
                            .map(|p| p.sim.output_mb)
                            .unwrap_or(0.0);
                        master.catalog_mut().register(name.clone(), out_mb, false)
                    }
                    // Unlisted source (wrapper script etc.): zero-sized.
                    None => master.catalog_mut().register(name.clone(), 0.0, false),
                },
            };
            file_ids.insert(name, id);
        }
        // Intern every category up front (job categories may lack
        // profiles and vice versa — cover both) so ids exist before the
        // first submission.
        let mut cat_of = BTreeMap::new();
        for job in workflow.dag.jobs() {
            if !cat_of.contains_key(&job.category) {
                let id = master.intern_category(&job.category);
                cat_of.insert(job.category.clone(), id);
            }
        }
        for name in workflow.categories.keys() {
            if !cat_of.contains_key(name) {
                let id = master.intern_category(name);
                cat_of.insert(name.clone(), id);
            }
        }
        // Trusted declared resources seed the knowledge map.
        let mut learned = BTreeMap::new();
        if cfg.trust_declared {
            for (name, prof) in &workflow.categories {
                if let Some(r) = prof.declared {
                    learned.insert(cat_of[name], r);
                }
            }
        }
        Operator {
            cfg,
            workflow,
            stats: crate::category_stats::CategoryStats::new(),
            cat_of,
            learned,
            probing: BTreeMap::new(),
            held: BTreeMap::new(),
            file_ids,
            job_for_task: BTreeMap::new(),
            task_for_job: BTreeMap::new(),
            next_task: 0,
            rng,
            submitted: 0,
            wal_pending: Vec::new(),
            wal_recording: false,
        }
    }

    /// Turn write-ahead decision logging on or off. The driver enables
    /// this when the fault plan schedules control-plane crashes; normal
    /// runs keep it off and pay nothing.
    pub fn record_wal(&mut self, on: bool) {
        self.wal_recording = on;
    }

    /// Drain the decision records logged since the last call (the driver
    /// appends them to its WAL after every operator entry point).
    pub fn drain_wal_records(&mut self) -> Vec<WalRecord> {
        std::mem::take(&mut self.wal_pending)
    }

    /// The learned statistics (feedback input).
    pub fn stats(&self) -> &crate::category_stats::CategoryStats {
        &self.stats
    }

    /// The wrapped workflow (read access).
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// Known per-category resources by name (declared-and-trusted or
    /// learned). Boundary convenience; the hot path uses
    /// [`Operator::known_resources_id`].
    pub fn known_resources(&self, category: &str) -> Option<Resources> {
        self.cat_of
            .get(category)
            .and_then(|id| self.learned.get(id))
            .copied()
    }

    /// Known per-category resources by interned id.
    pub fn known_resources_id(&self, cat: CategoryId) -> Option<Resources> {
        self.learned.get(&cat).copied()
    }

    /// Jobs currently held back by warm-up, as `(category, count)`.
    pub fn held_jobs(&self) -> Vec<(CategoryId, usize)> {
        self.held
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, v)| (*k, v.len()))
            .collect()
    }

    /// Total jobs submitted to the master so far.
    pub fn submitted_count(&self) -> usize {
        self.submitted
    }

    /// True when the whole workflow is resolved: every job completed,
    /// permanently failed, or abandoned because a dependency failed.
    /// (Without fault injection nothing fails, so this is exactly
    /// "all complete".)
    pub fn all_complete(&self) -> bool {
        self.workflow.all_resolved()
    }

    /// Jobs that permanently failed or were abandoned, as
    /// `(failed, abandoned)` counts.
    pub fn failure_counts(&self) -> (usize, usize) {
        (self.workflow.dag.failed(), self.workflow.dag.abandoned())
    }

    fn knowledge(&self, cat: CategoryId) -> CatKnowledge {
        if self.learned.contains_key(&cat) {
            CatKnowledge::Known
        } else if self.probing.get(&cat).copied().unwrap_or(false) {
            CatKnowledge::Probing
        } else {
            CatKnowledge::Unknown
        }
    }

    /// Submit every ready job the warm-up rules allow.
    pub fn submit_ready(
        &mut self,
        now: SimTime,
        master: &mut Master,
        fx: &mut EffectSink<WqEvent>,
    ) {
        for job in self.workflow.ready_jobs() {
            let cat = self.cat_of[&self
                .workflow
                .dag
                .job(job)
                .expect("ready job exists")
                .category];
            if !self.cfg.warmup {
                self.submit_job(now, job, master, fx);
                continue;
            }
            match self.knowledge(cat) {
                CatKnowledge::Known => self.submit_job(now, job, master, fx),
                CatKnowledge::Unknown => {
                    self.probing.insert(cat, true);
                    self.submit_job(now, job, master, fx);
                }
                CatKnowledge::Probing => {
                    self.workflow.submit(job); // leaves the DAG ready set
                    self.held.entry(cat).or_default().push(job);
                }
            }
        }
    }

    /// Build a task spec for `job` and submit it to the master.
    fn push_job(
        &mut self,
        now: SimTime,
        job: JobId,
        master: &mut Master,
        fx: &mut EffectSink<WqEvent>,
    ) {
        let j = self.workflow.dag.job(job).expect("job exists").clone();
        let profile = self
            .workflow
            .categories
            .get(&j.category)
            .cloned()
            .unwrap_or_else(|| hta_makeflow::CategoryProfile::unknown(j.category.clone()));
        let declared = self.known_resources_id(self.cat_of[&j.category]);
        let inputs: Vec<FileId> = j
            .inputs
            .iter()
            .filter_map(|f| self.file_ids.get(f).copied())
            .collect();
        let wall = self.sample_wall(&profile.sim);
        let task_id = TaskId(self.next_task);
        self.next_task += 1;
        let spec = TaskSpec {
            id: task_id,
            category: j.category.clone(),
            inputs,
            output_mb: profile.sim.output_mb,
            declared,
            actual: profile.sim.actual,
            exec: ExecModel {
                duration: wall,
                cpu_fraction: profile.sim.cpu_fraction,
            },
        };
        self.job_for_task.insert(task_id, job);
        self.task_for_job.insert(job, task_id);
        self.submitted += 1;
        if self.wal_recording {
            self.wal_pending.push(WalRecord::Submit {
                job,
                spec: spec.clone(),
            });
        }
        master.submit(now, spec, fx);
    }

    fn submit_job(
        &mut self,
        now: SimTime,
        job: JobId,
        master: &mut Master,
        fx: &mut EffectSink<WqEvent>,
    ) {
        self.workflow.submit(job);
        self.push_job(now, job, master, fx);
    }

    /// Admit one open-loop trace arrival. Trace tasks have no workflow
    /// job behind them: the DAG stays untouched and completion
    /// acknowledgements only feed the category statistics and learning.
    /// Categories are interned on first sight (unlike workflow stages,
    /// trace categories are unknown at construction), and a spec with no
    /// declared resources picks up whatever the category has learned so
    /// far — open-loop arrivals never wait in warm-up holds.
    pub fn submit_trace(
        &mut self,
        now: SimTime,
        mut spec: TaskSpec,
        master: &mut Master,
        fx: &mut EffectSink<WqEvent>,
    ) {
        let cat = self.intern_trace_category(&spec.category, master);
        if spec.declared.is_none() {
            spec.declared = self.known_resources_id(cat);
        }
        self.next_task = self.next_task.max(spec.id.raw() + 1);
        self.submitted += 1;
        if self.wal_recording {
            self.wal_pending
                .push(WalRecord::TraceSubmit { spec: spec.clone() });
        }
        master.submit(now, spec, fx);
    }

    fn intern_trace_category(&mut self, name: &str, master: &mut Master) -> CategoryId {
        match self.cat_of.get(name) {
            Some(c) => *c,
            None => {
                let id = master.intern_category(name);
                self.cat_of.insert(name.to_string(), id);
                id
            }
        }
    }

    /// Handle a completed task: record statistics, release held jobs,
    /// unblock dependents, submit whatever is now ready.
    pub fn on_task_completed(
        &mut self,
        now: SimTime,
        task: TaskId,
        cat: CategoryId,
        measured: Measured,
        master: &mut Master,
        fx: &mut EffectSink<WqEvent>,
    ) {
        self.stats.observe(cat, measured);

        // First measurement for a category with unknown resources: commit
        // the learned requirement, upgrade queued tasks, release held jobs.
        if self.cfg.learn && !self.learned.contains_key(&cat) {
            let est = self
                .stats
                .estimate(cat)
                .expect("just observed this category");
            self.learned.insert(cat, est.resources);
            self.probing.insert(cat, false);
            if self.wal_recording {
                self.wal_pending.push(WalRecord::Learn {
                    cat,
                    resources: est.resources,
                });
            }
            // Upgrade already-queued waiting tasks of this category (e.g.
            // re-queued after a worker kill).
            let waiting: Vec<TaskId> = master
                .queue_status()
                .waiting
                .iter()
                .filter(|w| w.cat == cat)
                .map(|w| w.id)
                .collect();
            for t in waiting {
                master.declare_resources(t, est.resources);
            }
            if let Some(held) = self.held.remove(&cat) {
                for job in held {
                    // Held jobs were marked submitted in the DAG; submit
                    // them to the master now with the learned resources.
                    self.push_job(now, job, master, fx);
                }
            }
        }

        // Unblock the DAG and submit newly ready jobs.
        if let Some(job) = self.job_for_task.get(&task).copied() {
            let _newly_ready = self.workflow.complete(job);
            self.submit_ready(now, master, fx);
        }
    }

    /// Handle a permanently failed task (retry budget exhausted under
    /// fault injection): fail the job, abandon its transitive dependents
    /// (graceful degradation — independent branches keep running), and if
    /// the failed task was a category's warm-up probe, promote a held job
    /// of that category as the replacement probe so the category doesn't
    /// deadlock.
    pub fn on_task_failed(
        &mut self,
        now: SimTime,
        task: TaskId,
        cat: CategoryId,
        master: &mut Master,
        fx: &mut EffectSink<WqEvent>,
    ) {
        let Some(job) = self.job_for_task.get(&task).copied() else {
            return;
        };
        let abandoned = self.workflow.fail(job);
        // Abandoned jobs will never run: purge them from the held lists.
        if !abandoned.is_empty() {
            for list in self.held.values_mut() {
                list.retain(|j| !abandoned.contains(j));
            }
            self.held.retain(|_, v| !v.is_empty());
        }
        // Re-aim the warm-up probe if it just died unlearned.
        if self.cfg.warmup
            && !self.learned.contains_key(&cat)
            && self.probing.get(&cat).copied().unwrap_or(false)
        {
            self.probing.insert(cat, false);
            let next = self
                .held
                .get_mut(&cat)
                .filter(|v| !v.is_empty())
                .map(|v| v.remove(0));
            if let Some(next_job) = next {
                self.probing.insert(cat, true);
                self.push_job(now, next_job, master, fx);
            }
        }
        self.submit_ready(now, master, fx);
    }

    // ------------------------------------------------------------------
    // WAL replay (crash recovery)
    // ------------------------------------------------------------------
    //
    // Replay methods re-apply logged decisions against a checkpoint-
    // restored operator and a data-plane-reset master. They must never
    // draw randomness (the logged spec carries the sampled wall time) and
    // never log (the records being replayed are still in the driver's WAL
    // for a possible second crash before the next checkpoint).

    /// Re-apply a logged submission.
    pub fn replay_submit(
        &mut self,
        now: SimTime,
        job: JobId,
        spec: TaskSpec,
        master: &mut Master,
        fx: &mut EffectSink<WqEvent>,
    ) {
        // A job released from a warm-up hold was already marked submitted
        // in the DAG when it was held; a directly submitted job was not.
        let mut was_held = false;
        for list in self.held.values_mut() {
            let before = list.len();
            list.retain(|j| *j != job);
            was_held |= list.len() != before;
        }
        self.held.retain(|_, v| !v.is_empty());
        if !was_held {
            self.workflow.submit(job);
        }
        // The first submission of a still-unlearned category under warm-up
        // was that category's probe: restore the flag.
        let cat = self.cat_of[&spec.category];
        if self.cfg.warmup
            && !self.learned.contains_key(&cat)
            && !self.probing.get(&cat).copied().unwrap_or(false)
        {
            self.probing.insert(cat, true);
        }
        self.next_task = self.next_task.max(spec.id.raw() + 1);
        self.job_for_task.insert(spec.id, job);
        self.task_for_job.insert(job, spec.id);
        self.submitted += 1;
        master.submit(now, spec, fx);
    }

    /// Re-apply a logged trace admission. The spec is decided data — the
    /// declared fill already happened before logging — so replay only
    /// re-interns the category (post-checkpoint interns were lost with
    /// the crash) and resubmits, without logging.
    pub fn replay_trace_submit(
        &mut self,
        now: SimTime,
        spec: TaskSpec,
        master: &mut Master,
        fx: &mut EffectSink<WqEvent>,
    ) {
        self.intern_trace_category(&spec.category, master);
        self.next_task = self.next_task.max(spec.id.raw() + 1);
        self.submitted += 1;
        master.submit(now, spec, fx);
    }

    /// Re-apply a logged category learning decision. Held jobs are *not*
    /// released here — their releases follow as their own `Submit`
    /// records.
    pub fn replay_learn(&mut self, cat: CategoryId, resources: Resources, master: &mut Master) {
        self.learned.insert(cat, resources);
        self.probing.insert(cat, false);
        let waiting: Vec<TaskId> = master
            .queue_status()
            .waiting
            .iter()
            .filter(|w| w.cat == cat)
            .map(|w| w.id)
            .collect();
        for t in waiting {
            master.declare_resources(t, resources);
        }
    }

    /// Re-apply a logged completion acknowledgement (DAG unblock only;
    /// newly ready jobs were submitted under their own records).
    pub fn replay_complete(&mut self, task: TaskId) {
        if let Some(job) = self.job_for_task.get(&task).copied() {
            let _ = self.workflow.complete(job);
        }
    }

    /// Re-apply a logged permanent-failure acknowledgement. The original
    /// handler's probe re-aim produced its own `Submit` record, so replay
    /// only fails the DAG and drops the dead probe flag.
    pub fn replay_fail(&mut self, task: TaskId, cat: CategoryId) {
        let Some(job) = self.job_for_task.get(&task).copied() else {
            return;
        };
        let abandoned = self.workflow.fail(job);
        if !abandoned.is_empty() {
            for list in self.held.values_mut() {
                list.retain(|j| !abandoned.contains(j));
            }
            self.held.retain(|_, v| !v.is_empty());
        }
        if self.cfg.warmup
            && !self.learned.contains_key(&cat)
            && self.probing.get(&cat).copied().unwrap_or(false)
        {
            self.probing.insert(cat, false);
        }
    }

    /// Post-replay invariant pass: every category flagged as probing must
    /// have a live probe task in the master. A flag without a probe (its
    /// fate was lost in the outage in a way replay couldn't reconstruct)
    /// would deadlock the category's held jobs forever — promote a held
    /// job as the new probe, or clear the flag when nothing is held.
    /// Promotions are fresh decisions and log normally. Returns the
    /// number of probes promoted.
    pub fn reconcile_probes(
        &mut self,
        now: SimTime,
        master: &mut Master,
        fx: &mut EffectSink<WqEvent>,
    ) -> usize {
        let flagged: Vec<CategoryId> = self
            .probing
            .iter()
            .filter(|(_, on)| **on)
            .map(|(cat, _)| *cat)
            .collect();
        let mut promoted = 0;
        for cat in flagged {
            if self.learned.contains_key(&cat) {
                self.probing.insert(cat, false);
                continue;
            }
            if master.has_live_task_in_category(cat) {
                continue;
            }
            let next = self
                .held
                .get_mut(&cat)
                .filter(|v| !v.is_empty())
                .map(|v| v.remove(0));
            match next {
                Some(job) => {
                    self.push_job(now, job, master, fx);
                    promoted += 1;
                }
                None => {
                    self.probing.insert(cat, false);
                }
            }
        }
        self.held.retain(|_, v| !v.is_empty());
        promoted
    }

    /// Sample a job's wall time from its category profile: exact when
    /// jitter is zero, uniform ±jitter by default, lognormal (median =
    /// nominal wall, σ = jitter) when the profile is heavy-tailed.
    fn sample_wall(&mut self, sim: &hta_makeflow::SimProfile) -> Duration {
        if sim.wall_jitter <= 0.0 {
            return sim.wall;
        }
        if sim.heavy_tail {
            let mu = sim.wall.as_secs_f64().max(1e-3).ln();
            let secs = self.rng.lognormal(mu, sim.wall_jitter);
            Duration::from_secs_f64(secs)
        } else {
            self.rng.jittered(sim.wall, sim.wall_jitter)
        }
    }

    /// The workflow job a task implements.
    pub fn job_of(&self, task: TaskId) -> Option<JobId> {
        self.job_for_task.get(&task).copied()
    }

    /// Default execution estimate for the estimator (mean of known
    /// category walls, or 60 s).
    pub fn default_exec_estimate(&self) -> Duration {
        Duration::from_secs(60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hta_makeflow::{CategoryProfile, Job, SimProfile, Workflow};
    use hta_workqueue::master::MasterConfig;
    use hta_workqueue::FileCatalog;

    fn parallel_workflow(n: u64, declared: Option<Resources>) -> Workflow {
        let jobs: Vec<Job> = (0..n)
            .map(|i| Job {
                id: JobId(i),
                category: "align".into(),
                command: format!("blast {i}"),
                inputs: vec!["db".into()],
                outputs: vec![format!("out.{i}")],
            })
            .collect();
        let profile = CategoryProfile {
            name: "align".into(),
            declared,
            sim: SimProfile {
                wall: Duration::from_secs(60),
                cpu_fraction: 0.9,
                actual: Resources::cores(1, 2_000, 2_000),
                output_mb: 0.6,
                wall_jitter: 0.0,
                heavy_tail: false,
            },
        };
        Workflow::from_jobs(jobs, vec![profile])
            .unwrap()
            .with_source_file("db", 100.0, true)
    }

    fn master() -> Master {
        Master::new(
            MasterConfig {
                egress_base_mbps: 100.0,
                egress_overhead_per_flow: 0.0,
                fast_abort_multiplier: None,
                peer_transfers: false,
                peer_bandwidth_mbps: 2_000.0,
                faults: Default::default(),
                net: Default::default(),
                retire_completed: false,
            },
            FileCatalog::new(),
        )
    }

    fn cat(m: &Master, name: &str) -> CategoryId {
        m.interner().get(name).expect("category interned")
    }

    #[test]
    fn files_are_registered_in_catalog() {
        let mut m = master();
        let wf = parallel_workflow(3, None);
        let op = Operator::new(OperatorConfig::default(), wf, &mut m);
        // db + 3 outputs.
        assert_eq!(m.catalog().len(), 4);
        assert!(op.known_resources("align").is_none());
        assert!(
            m.interner().get("align").is_some(),
            "workflow categories are pre-interned"
        );
    }

    #[test]
    fn warmup_probes_one_job_per_category() {
        let mut m = master();
        let wf = parallel_workflow(10, None);
        let mut op = Operator::new(OperatorConfig::default(), wf, &mut m);
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        assert_eq!(op.submitted_count(), 1, "only the probe goes out");
        assert_eq!(op.held_jobs(), vec![(cat(&m, "align"), 9)]);
        assert_eq!(m.waiting_count() + m.running_count(), 1);
    }

    #[test]
    fn probe_completion_releases_held_jobs_with_learned_resources() {
        let mut m = master();
        let wf = parallel_workflow(10, None);
        let mut op = Operator::new(OperatorConfig::default(), wf, &mut m);
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        let measured = Measured {
            peak: Resources::cores(1, 2_000, 2_000),
            wall: Duration::from_secs(58),
        };
        let align = cat(&m, "align");
        op.on_task_completed(
            SimTime::from_secs(60),
            TaskId(0),
            align,
            measured,
            &mut m,
            &mut fx,
        );
        assert_eq!(op.submitted_count(), 10, "probe + 9 released");
        assert!(op.held_jobs().is_empty());
        assert_eq!(
            op.known_resources("align"),
            Some(Resources::cores(1, 2_000, 2_000))
        );
        assert_eq!(
            op.known_resources_id(align),
            Some(Resources::cores(1, 2_000, 2_000))
        );
        // Released tasks carry the learned declaration.
        let st = m.queue_status();
        assert!(st
            .waiting
            .iter()
            .all(|w| w.declared == Some(Resources::cores(1, 2_000, 2_000))));
    }

    #[test]
    fn trust_declared_skips_probing() {
        let mut m = master();
        let wf = parallel_workflow(10, Some(Resources::cores(1, 2_000, 2_000)));
        let mut op = Operator::new(
            OperatorConfig {
                warmup: true,
                trust_declared: true,
                learn: true,
                seed: 1,
            },
            wf,
            &mut m,
        );
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        assert_eq!(op.submitted_count(), 10, "no probing needed");
        assert!(op.held_jobs().is_empty());
    }

    #[test]
    fn no_warmup_fans_out_everything() {
        let mut m = master();
        let wf = parallel_workflow(10, None);
        let mut op = Operator::new(
            OperatorConfig {
                warmup: false,
                trust_declared: false,
                learn: true,
                seed: 1,
            },
            wf,
            &mut m,
        );
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        assert_eq!(op.submitted_count(), 10);
    }

    #[test]
    fn requeued_tasks_get_upgraded_once_category_is_learned() {
        // A task re-queued (worker killed) before its category was learned
        // sits in the queue with unknown resources; the first completion
        // of the category must upgrade it in place.
        let mut m = master();
        let wf = parallel_workflow(3, None);
        let mut op = Operator::new(
            OperatorConfig {
                warmup: false,
                trust_declared: false,
                learn: true,
                seed: 1,
            },
            wf,
            &mut m,
        );
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        // All three submitted unknown; none dispatched (no workers), so
        // they are all waiting with declared = None.
        assert!(m
            .queue_status()
            .waiting
            .iter()
            .all(|w| w.declared.is_none()));
        // Simulate the category's first measurement arriving: every task
        // still in the queue gets the learned declaration in place.
        let measured = Measured {
            peak: Resources::cores(1, 2_000, 2_000),
            wall: Duration::from_secs(55),
        };
        let align = cat(&m, "align");
        op.on_task_completed(
            SimTime::from_secs(60),
            TaskId(0),
            align,
            measured,
            &mut m,
            &mut fx,
        );
        let upgraded = m
            .queue_status()
            .waiting
            .iter()
            .filter(|w| w.declared == Some(Resources::cores(1, 2_000, 2_000)))
            .count();
        assert_eq!(upgraded, 3, "all queued align tasks upgraded");
    }

    #[test]
    fn second_category_probes_independently() {
        // Two-stage workflow with distinct categories: after stage a is
        // learned, stage b still probes one job first.
        let jobs = vec![
            Job {
                id: JobId(0),
                category: "a".into(),
                command: "a".into(),
                inputs: vec![],
                outputs: vec!["x".into()],
            },
            Job {
                id: JobId(1),
                category: "b".into(),
                command: "b1".into(),
                inputs: vec!["x".into()],
                outputs: vec!["y1".into()],
            },
            Job {
                id: JobId(2),
                category: "b".into(),
                command: "b2".into(),
                inputs: vec!["x".into()],
                outputs: vec!["y2".into()],
            },
            Job {
                id: JobId(3),
                category: "b".into(),
                command: "b3".into(),
                inputs: vec!["x".into()],
                outputs: vec!["y3".into()],
            },
        ];
        let wf = Workflow::from_jobs(jobs, vec![]).unwrap();
        let mut m = master();
        let mut op = Operator::new(OperatorConfig::default(), wf, &mut m);
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        assert_eq!(op.submitted_count(), 1, "stage-a probe only");
        let measured = Measured {
            peak: Resources::cores(1, 1_000, 0),
            wall: Duration::from_secs(10),
        };
        let a = cat(&m, "a");
        let b = cat(&m, "b");
        op.on_task_completed(
            SimTime::from_secs(10),
            TaskId(0),
            a,
            measured,
            &mut m,
            &mut fx,
        );
        // Stage b became ready: exactly one b-probe goes out, two held.
        assert_eq!(op.submitted_count(), 2);
        assert_eq!(op.held_jobs(), vec![(b, 2)]);
        op.on_task_completed(
            SimTime::from_secs(20),
            TaskId(1),
            b,
            measured,
            &mut m,
            &mut fx,
        );
        assert_eq!(op.submitted_count(), 4, "held b jobs released");
        assert!(op.held_jobs().is_empty());
    }

    #[test]
    fn failed_probe_promotes_a_new_probe() {
        let mut m = master();
        let wf = parallel_workflow(5, None);
        let mut op = Operator::new(OperatorConfig::default(), wf, &mut m);
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        assert_eq!(op.submitted_count(), 1, "only the probe goes out");
        let align = cat(&m, "align");
        op.on_task_failed(SimTime::from_secs(30), TaskId(0), align, &mut m, &mut fx);
        // One held job is promoted as the replacement probe; the rest
        // stay held behind it.
        assert_eq!(op.submitted_count(), 2);
        assert_eq!(op.held_jobs(), vec![(align, 3)]);
        assert_eq!(op.failure_counts(), (1, 0));
        assert!(!op.all_complete());
    }

    #[test]
    fn failure_abandons_dependents_and_resolves_workflow() {
        // Chain a → b: a fails permanently, b is abandoned, and the
        // workflow counts as resolved (nothing left to run).
        let jobs = vec![
            Job {
                id: JobId(0),
                category: "a".into(),
                command: "a".into(),
                inputs: vec![],
                outputs: vec!["x".into()],
            },
            Job {
                id: JobId(1),
                category: "b".into(),
                command: "b".into(),
                inputs: vec!["x".into()],
                outputs: vec!["y".into()],
            },
        ];
        let wf = Workflow::from_jobs(jobs, vec![]).unwrap();
        let mut m = master();
        let mut op = Operator::new(
            OperatorConfig {
                warmup: false,
                ..OperatorConfig::default()
            },
            wf,
            &mut m,
        );
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        assert!(!op.all_complete());
        let a = cat(&m, "a");
        op.on_task_failed(SimTime::from_secs(10), TaskId(0), a, &mut m, &mut fx);
        assert_eq!(op.failure_counts(), (1, 1));
        assert!(op.all_complete(), "failed + abandoned = resolved");
    }

    #[test]
    fn dag_dependencies_gate_submission() {
        // two-stage: 2 stage-a jobs then 1 stage-b job consuming both.
        let jobs = vec![
            Job {
                id: JobId(0),
                category: "a".into(),
                command: "a0".into(),
                inputs: vec![],
                outputs: vec!["x0".into()],
            },
            Job {
                id: JobId(1),
                category: "a".into(),
                command: "a1".into(),
                inputs: vec![],
                outputs: vec!["x1".into()],
            },
            Job {
                id: JobId(2),
                category: "b".into(),
                command: "b".into(),
                inputs: vec!["x0".into(), "x1".into()],
                outputs: vec!["y".into()],
            },
        ];
        let wf = Workflow::from_jobs(jobs, vec![]).unwrap();
        let mut m = master();
        let mut op = Operator::new(
            OperatorConfig {
                warmup: false,
                ..OperatorConfig::default()
            },
            wf,
            &mut m,
        );
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        assert_eq!(op.submitted_count(), 2, "stage-b blocked");
        let measured = Measured {
            peak: Resources::cores(1, 0, 0),
            wall: Duration::from_secs(10),
        };
        let a = cat(&m, "a");
        let b = cat(&m, "b");
        op.on_task_completed(
            SimTime::from_secs(10),
            TaskId(0),
            a,
            measured,
            &mut m,
            &mut fx,
        );
        assert_eq!(op.submitted_count(), 2, "one dependency still missing");
        op.on_task_completed(
            SimTime::from_secs(12),
            TaskId(1),
            a,
            measured,
            &mut m,
            &mut fx,
        );
        assert_eq!(op.submitted_count(), 3, "stage-b released");
        assert!(!op.all_complete());
        op.on_task_completed(
            SimTime::from_secs(30),
            TaskId(2),
            b,
            measured,
            &mut m,
            &mut fx,
        );
        assert!(op.all_complete());
    }

    #[test]
    fn wal_recording_off_logs_nothing() {
        let mut m = master();
        let wf = parallel_workflow(5, None);
        let mut op = Operator::new(OperatorConfig::default(), wf, &mut m);
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        assert!(op.drain_wal_records().is_empty());
    }

    #[test]
    fn wal_replay_reconstructs_control_plane_decisions() {
        let mut m = master();
        let wf = parallel_workflow(5, None);
        let mut op = Operator::new(OperatorConfig::default(), wf, &mut m);
        op.record_wal(true);
        // Checkpoint #0: pristine clones before any submission.
        let cp_op = op.clone();
        let cp_m = m.clone();
        let mut fx = EffectSink::new();
        // Live timeline, with WAL collection ordered the way the driver
        // orders it: terminal acknowledgements are logged *before* the
        // handler runs, the handler's own decisions right after.
        let mut wal: Vec<WalRecord> = Vec::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        wal.extend(op.drain_wal_records());
        assert_eq!(wal.len(), 1, "only the probe was submitted");
        let measured = Measured {
            peak: Resources::cores(1, 2_000, 2_000),
            wall: Duration::from_secs(58),
        };
        let align = cat(&m, "align");
        wal.push(WalRecord::Complete {
            task: TaskId(0),
            at: SimTime::from_secs(60),
        });
        // In a full run the master completes the task before notifying the
        // operator; there are no workers here, so apply the terminal
        // transition directly to keep the live master consistent.
        m.recover_complete(SimTime::from_secs(60), TaskId(0));
        op.on_task_completed(
            SimTime::from_secs(60),
            TaskId(0),
            align,
            measured,
            &mut m,
            &mut fx,
        );
        wal.extend(op.drain_wal_records());
        // Probe + Complete + Learn + 4 released submissions.
        assert_eq!(wal.len(), 7);
        // Crash: restore the checkpoint and replay the log.
        let (mut rm, mut rop) = (cp_m, cp_op);
        let t = SimTime::from_secs(90);
        assert_eq!(rm.recover_reset_data_plane(t), 0, "nothing was in flight");
        let mut rfx = EffectSink::new();
        for rec in &wal {
            match rec {
                WalRecord::Submit { job, spec } => {
                    rop.replay_submit(t, *job, spec.clone(), &mut rm, &mut rfx)
                }
                WalRecord::Learn { cat, resources } => rop.replay_learn(*cat, *resources, &mut rm),
                WalRecord::Complete { task, at } => {
                    rm.recover_complete(*at, *task);
                    rop.replay_complete(*task);
                }
                WalRecord::Fail { task, at } => {
                    let c = rm.task(*task).unwrap().cat;
                    rm.recover_failed(*at, *task);
                    rop.replay_fail(*task, c);
                }
                WalRecord::TraceSubmit { spec } => {
                    rop.replay_trace_submit(t, spec.clone(), &mut rm, &mut rfx)
                }
            }
        }
        rop.reconcile_probes(t, &mut rm, &mut rfx);
        assert_eq!(rop.submitted_count(), op.submitted_count());
        assert_eq!(rop.held_jobs(), op.held_jobs());
        assert_eq!(rop.known_resources("align"), op.known_resources("align"));
        assert_eq!(rm.completed_task_ids(), m.completed_task_ids());
        assert_eq!(rm.waiting_count(), m.waiting_count());
        // Released submissions carry the learned declaration (embedded in
        // the recorded specs), exactly like the live queue.
        rm.refresh_queue_status();
        assert!(rm
            .queue_status()
            .waiting
            .iter()
            .all(|w| w.declared == Some(Resources::cores(1, 2_000, 2_000))));
        // Fresh decisions after recovery keep the task-id sequence intact:
        // no replayed id is ever reissued.
        assert!(!rop.all_complete());
    }

    #[test]
    fn reconcile_probes_promotes_orphaned_hold() {
        // A probing flag with no live probe and jobs still held would
        // deadlock the category: reconciliation must promote a new probe.
        let mut m = master();
        let wf = parallel_workflow(4, None);
        let mut op = Operator::new(OperatorConfig::default(), wf, &mut m);
        let mut fx = EffectSink::new();
        op.submit_ready(SimTime::ZERO, &mut m, &mut fx);
        assert_eq!(op.submitted_count(), 1);
        // Lose the probe without any record of its fate (simulates an
        // acknowledgement lost in the outage): force-complete it in the
        // master only.
        m.recover_complete(SimTime::from_secs(10), TaskId(0));
        let promoted = op.reconcile_probes(SimTime::from_secs(20), &mut m, &mut fx);
        assert_eq!(promoted, 1, "one held job became the new probe");
        assert_eq!(op.submitted_count(), 2);
        let align = cat(&m, "align");
        assert_eq!(op.held_jobs(), vec![(align, 2)]);
    }
}
