//! Per-category runtime statistics (the feedback input).
//!
//! §IV-A: "By collecting the resource usage of complete jobs, we can
//! estimate the resource requirements of jobs belonging to the same
//! stage." The estimate is conservative: the **component-wise maximum**
//! of measured peaks (so packing never starves a job), while execution
//! time uses a running mean (the estimator wants expected completion
//! times, not worst cases).
//!
//! Categories are addressed by interned [`CategoryId`]s (assigned by the
//! master at submission), so the per-completion hot path indexes a `Vec`
//! instead of hashing category name strings.

use hta_des::{CategoryId, Duration};
use hta_resources::Resources;
use hta_workqueue::task::Measured;

/// What the stats can say about one category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryEstimate {
    /// Conservative per-job resource requirement (max of observed peaks).
    pub resources: Resources,
    /// Mean observed execution (wall) time.
    pub mean_wall: Duration,
    /// Number of completed jobs backing the estimate.
    pub samples: u64,
}

#[derive(Debug, Clone, Default)]
struct Accum {
    peak: Resources,
    total_wall_ms: u128,
    samples: u64,
}

/// Online per-category statistics, indexed by [`CategoryId`].
#[derive(Debug, Clone, Default)]
pub struct CategoryStats {
    by_category: Vec<Accum>,
}

impl CategoryStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed job's measurement.
    pub fn observe(&mut self, cat: CategoryId, measured: Measured) {
        let idx = cat.index();
        if self.by_category.len() <= idx {
            self.by_category.resize_with(idx + 1, Accum::default);
        }
        let acc = &mut self.by_category[idx];
        acc.peak = acc.peak.max(&measured.peak);
        acc.total_wall_ms += measured.wall.as_millis() as u128;
        acc.samples += 1;
    }

    /// Current estimate for a category, if at least one job completed.
    pub fn estimate(&self, cat: CategoryId) -> Option<CategoryEstimate> {
        let acc = self.by_category.get(cat.index())?;
        if acc.samples == 0 {
            return None;
        }
        Some(CategoryEstimate {
            resources: acc.peak,
            mean_wall: Duration::from_millis((acc.total_wall_ms / acc.samples as u128) as u64),
            samples: acc.samples,
        })
    }

    /// True once the category has any measurement.
    pub fn knows(&self, cat: CategoryId) -> bool {
        self.by_category
            .get(cat.index())
            .is_some_and(|a| a.samples > 0)
    }

    /// Number of categories with measurements.
    pub fn categories_known(&self) -> usize {
        self.by_category.iter().filter(|a| a.samples > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALIGN: CategoryId = CategoryId::from_u32(0);
    const REDUCE: CategoryId = CategoryId::from_u32(1);

    fn m(cores: i64, mem: i64, wall_s: u64) -> Measured {
        Measured {
            peak: Resources::new(cores, mem, 0),
            wall: Duration::from_secs(wall_s),
        }
    }

    #[test]
    fn unknown_category_has_no_estimate() {
        let s = CategoryStats::new();
        assert!(s.estimate(ALIGN).is_none());
        assert!(!s.knows(ALIGN));
        assert_eq!(s.categories_known(), 0);
    }

    #[test]
    fn single_observation_is_the_estimate() {
        let mut s = CategoryStats::new();
        s.observe(ALIGN, m(1000, 2000, 90));
        let e = s.estimate(ALIGN).unwrap();
        assert_eq!(e.resources, Resources::new(1000, 2000, 0));
        assert_eq!(e.mean_wall, Duration::from_secs(90));
        assert_eq!(e.samples, 1);
        assert!(s.knows(ALIGN));
    }

    #[test]
    fn resources_take_max_wall_takes_mean() {
        let mut s = CategoryStats::new();
        s.observe(ALIGN, m(1000, 4000, 80));
        s.observe(ALIGN, m(1500, 2000, 120));
        let e = s.estimate(ALIGN).unwrap();
        // Max per component — not the max vector of either sample.
        assert_eq!(e.resources, Resources::new(1500, 4000, 0));
        assert_eq!(e.mean_wall, Duration::from_secs(100));
        assert_eq!(e.samples, 2);
    }

    #[test]
    fn categories_are_independent() {
        let mut s = CategoryStats::new();
        s.observe(ALIGN, m(1000, 0, 10));
        s.observe(REDUCE, m(2000, 0, 20));
        assert_eq!(s.categories_known(), 2);
        assert_eq!(s.estimate(ALIGN).unwrap().resources.millicores, 1000);
        assert_eq!(s.estimate(REDUCE).unwrap().resources.millicores, 2000);
    }

    #[test]
    fn sparse_ids_do_not_count_as_known() {
        let mut s = CategoryStats::new();
        // Observing id 2 grows the table through ids 0 and 1, which must
        // stay unknown.
        s.observe(CategoryId::from_u32(2), m(500, 0, 5));
        assert_eq!(s.categories_known(), 1);
        assert!(!s.knows(ALIGN));
        assert!(!s.knows(REDUCE));
        assert!(s.knows(CategoryId::from_u32(2)));
    }
}
