//! A target-tracking baseline (the related-work space, §VII).
//!
//! Cloud providers' generic autoscalers (AWS target tracking, and — in
//! spirit — queue-metric scalers like KEDA) keep a chosen metric at a
//! target by proportional control. [`TargetTrackingPolicy`] tracks
//! **backlog per worker** (waiting tasks / live workers) — a queue-aware
//! but initialization-blind strategy:
//!
//! ```text
//! desired = ceil(live × backlog_per_worker / target)
//! ```
//!
//! It is better informed than HPA's CPU metric (it sees the queue) but,
//! unlike HTA, it neither packs by measured resources nor forecasts
//! completions across the initialization cycle — so it over-provisions
//! on backlogs the current pool would absorb anyway.

use hta_des::{Duration, SimTime};

use crate::policy::{PolicyContext, ScaleAction, ScalingPolicy};

/// Target-tracking configuration.
#[derive(Debug, Clone)]
pub struct TargetTrackingConfig {
    /// Desired waiting tasks per live worker.
    pub target_backlog_per_worker: f64,
    /// Evaluation period.
    pub sync_interval: Duration,
    /// Scale-in cooldown (AWS default: 300 s).
    pub scale_in_cooldown: Duration,
    /// Lower clamp.
    pub min_workers: usize,
}

impl Default for TargetTrackingConfig {
    fn default() -> Self {
        TargetTrackingConfig {
            target_backlog_per_worker: 2.0,
            sync_interval: Duration::from_secs(15),
            scale_in_cooldown: Duration::from_secs(300),
            min_workers: 1,
        }
    }
}

/// The policy.
#[derive(Debug, Clone)]
pub struct TargetTrackingPolicy {
    cfg: TargetTrackingConfig,
    last_desired: usize,
    last_scale_in: Option<SimTime>,
}

impl TargetTrackingPolicy {
    /// A fresh controller.
    pub fn new(cfg: TargetTrackingConfig) -> Self {
        TargetTrackingPolicy {
            cfg,
            last_desired: 0,
            last_scale_in: None,
        }
    }
}

impl ScalingPolicy for TargetTrackingPolicy {
    fn name(&self) -> String {
        format!(
            "TargetTracking({}/worker)",
            self.cfg.target_backlog_per_worker
        )
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> (ScaleAction, Duration) {
        if ctx.workload_done {
            self.last_desired = 0;
            return if ctx.live_worker_pods > 0 {
                (
                    ScaleAction::DrainWorkers(ctx.live_worker_pods),
                    self.cfg.sync_interval,
                )
            } else {
                (ScaleAction::None, self.cfg.sync_interval)
            };
        }
        let backlog =
            ctx.queue.waiting.len() + ctx.held_jobs.iter().map(|(_, n)| *n).sum::<usize>();
        let live = ctx.live_worker_pods.max(1);
        let metric = backlog as f64 / live as f64;
        let raw = ((live as f64) * metric / self.cfg.target_backlog_per_worker).ceil() as usize;
        // Keep at least enough workers for what is running.
        let busy_floor = if ctx.queue.running.is_empty() { 0 } else { 1 };
        let desired = raw
            .max(self.cfg.min_workers)
            .max(busy_floor)
            .min(ctx.max_workers);
        self.last_desired = desired;
        let action = if desired > ctx.live_worker_pods {
            ScaleAction::CreateWorkers(desired - ctx.live_worker_pods)
        } else if desired < ctx.live_worker_pods {
            // Scale-in cooldown.
            let ok = self
                .last_scale_in
                .map(|t| ctx.now.since(t) >= self.cfg.scale_in_cooldown)
                .unwrap_or(true);
            if ok {
                self.last_scale_in = Some(ctx.now);
                ScaleAction::DrainWorkers(ctx.live_worker_pods - desired)
            } else {
                ScaleAction::None
            }
        } else {
            ScaleAction::None
        };
        (action, self.cfg.sync_interval)
    }

    fn desired(&self) -> usize {
        self.last_desired
    }

    fn clone_box(&self) -> Box<dyn ScalingPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category_stats::CategoryStats;
    use hta_des::{CategoryId, Interner};
    use hta_resources::Resources;
    use hta_workqueue::master::{QueueStatus, WaitingSnapshot};
    use hta_workqueue::TaskId;

    fn it() -> &'static Interner {
        static IT: std::sync::OnceLock<Interner> = std::sync::OnceLock::new();
        IT.get_or_init(|| {
            let mut it = Interner::new();
            it.intern("t");
            it
        })
    }

    fn ctx<'a>(
        queue: &'a QueueStatus,
        stats: &'a CategoryStats,
        live: usize,
        now_s: u64,
    ) -> PolicyContext<'a> {
        PolicyContext {
            now: SimTime::from_secs(now_s),
            queue,
            interner: it(),
            held_jobs: &[],
            stats,
            init_time: Duration::from_secs(157),
            worker_unit: Resources::cores(3, 12_000, 50_000),
            live_worker_pods: live,
            pending_worker_pods: 0,
            utilization: None,
            max_workers: 20,
            workload_done: false,
            telemetry_age: Duration::ZERO,
        }
    }

    fn backlog(n: usize) -> QueueStatus {
        QueueStatus {
            waiting: (0..n)
                .map(|i| WaitingSnapshot {
                    id: TaskId(i as u64),
                    cat: CategoryId::from_u32(0),
                    declared: None,
                })
                .collect(),
            ..QueueStatus::default()
        }
    }

    #[test]
    fn tracks_backlog_target() {
        let mut p = TargetTrackingPolicy::new(TargetTrackingConfig::default());
        let q = backlog(20);
        let stats = CategoryStats::new();
        // 20 waiting / target 2 per worker → 10 desired.
        let (action, next) = p.decide(&ctx(&q, &stats, 4, 0));
        assert_eq!(action, ScaleAction::CreateWorkers(6));
        assert_eq!(p.desired(), 10);
        assert_eq!(next, Duration::from_secs(15));
    }

    #[test]
    fn scale_in_respects_cooldown() {
        let mut p = TargetTrackingPolicy::new(TargetTrackingConfig::default());
        let stats = CategoryStats::new();
        let empty = backlog(0);
        // First scale-in applies…
        let (a1, _) = p.decide(&ctx(&empty, &stats, 10, 100));
        assert_eq!(a1, ScaleAction::DrainWorkers(9), "down to min");
        // …a second within the cooldown is suppressed…
        let (a2, _) = p.decide(&ctx(&empty, &stats, 8, 150));
        assert_eq!(a2, ScaleAction::None);
        // …and allowed again after it passes.
        let (a3, _) = p.decide(&ctx(&empty, &stats, 8, 500));
        assert!(matches!(a3, ScaleAction::DrainWorkers(_)));
    }

    #[test]
    fn quota_clamped_and_cleanup() {
        let mut p = TargetTrackingPolicy::new(TargetTrackingConfig::default());
        let stats = CategoryStats::new();
        let q = backlog(500);
        let (action, _) = p.decide(&ctx(&q, &stats, 1, 0));
        assert_eq!(action, ScaleAction::CreateWorkers(19), "clamped to 20");
        let mut done = ctx(&q, &stats, 6, 10);
        done.workload_done = true;
        let (action, _) = p.decide(&done);
        assert_eq!(action, ScaleAction::DrainWorkers(6));
    }
}
