//! The end-to-end system driver.
//!
//! Wires the four components of the paper's stack — the Kubernetes-like
//! cluster simulator, the Work Queue master, the Makeflow workflow (via
//! the operator) and a scaling policy — into one deterministic event
//! loop, and records the evaluation metrics (supply, in-use, shortage,
//! waste, pod counts, bandwidth, utilization) the figures are built from.
//!
//! Plumbing between components follows the paper's architecture (Fig. 8):
//!
//! * the **informer** stream from the cluster feeds HTA's init-time
//!   tracker and tells the driver when worker pods come up (worker
//!   connects to the master) or are evicted (worker killed, tasks
//!   re-queued);
//! * Work Queue **notifications** feed the operator (task completions →
//!   category statistics → DAG progress) and the cluster (drained workers
//!   exit → pod `Succeeded`);
//! * the **policy** is evaluated on its own cadence and its actions are
//!   translated into pod creations, graceful drains, or evictions.

use hta_cluster::objects::{Service, ServiceKind, StatefulSet};
use hta_cluster::{
    Cluster, ClusterConfig, ClusterEvent, ImageId, PodId, PodPhase, PodSpec, WatchKind,
};
use hta_des::trace::TraceRing;
use hta_des::{
    CategoryId, Checkpoint, DigestConfig, DigestReport, Duration, EffectSink, EventDigest,
    EventQueue, SimTime, Wal,
};
use hta_makeflow::Workflow;
use hta_metrics::{FaultSummary, RunRecorder, RunSummary, Sample, TaskSpan};
use hta_resources::Resources;
use hta_trace::{ArrivalSource, ArrivalStats};
use hta_workqueue::master::{Master, MasterConfig, WqEvent, WqNotification};
use hta_workqueue::{WorkerId, WorkerState};
use std::collections::BTreeMap;

use crate::fault::{ControlPlaneFaults, FaultPlan};
use crate::init_time::InitTimeTracker;
use crate::operator::{Operator, OperatorConfig};
use crate::policy::{PolicyContext, ScaleAction, ScalingPolicy};
use crate::recovery::{ControlPlaneState, RecoveryReport, WalRecord};
use crate::whatif::{BranchOutcome, BranchSpec, BranchStop, WhatIf};
use hta_des::{branch_salt, SnapshotState};

/// The worker-pod group label.
pub const WORKER_GROUP: &str = "wq-worker";
/// The master-pod group label.
pub const MASTER_GROUP: &str = "wq-master";

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Cluster simulator configuration.
    pub cluster: ClusterConfig,
    /// Master (egress link) configuration.
    pub master: MasterConfig,
    /// Operator behaviour (warm-up, declared-resource trust).
    pub operator: OperatorConfig,
    /// Worker pod resource request (§IV-A: node-sized for HTA).
    pub worker_request: Resources,
    /// Hard anti-affinity between worker pods (never two on one node) —
    /// guarantees the one-worker-per-node layout even for small workers.
    pub worker_anti_affinity: bool,
    /// Worker container image size (MB) — drives pull time.
    pub worker_image_mb: f64,
    /// Run the master as a StatefulSet pod in the cluster (§V-A) or
    /// outside it (the §III/IV micro-benchmarks).
    pub master_in_cluster: bool,
    /// Master pod resource request (when in cluster).
    pub master_request: Resources,
    /// Worker pods created as soon as the master is up (HTA's warm-up
    /// starts with the 3 bootstrap nodes; HPA starts at its minimum).
    pub initial_workers: usize,
    /// Hard cap on worker pods.
    pub max_workers: usize,
    /// Metric sampling interval.
    pub sample_interval: Duration,
    /// Default resource-initialization time before the first measurement.
    pub default_init_time: Duration,
    /// Feed measured initialization times to the policy (true, normal
    /// HTA) or always hand it `default_init_time` (false — the
    /// frozen-init-time ablation).
    pub use_measured_init_time: bool,
    /// Failure injection: instants at which a node hosting a running
    /// worker crashes (pods fail, tasks re-queue, capacity re-provisions).
    pub node_failures: Vec<Duration>,
    /// The unified fault-injection plan. When active it is distributed
    /// into the cluster and master fault configs (and its crash times
    /// appended to `node_failures`) by [`SystemDriver::new`]; when
    /// inactive (the default) the sub-configs keep whatever fault knobs
    /// were set on them directly.
    pub faults: FaultPlan,
    /// Keep the most recent N trace entries (scaling decisions, pod and
    /// workload transitions). 0 disables tracing.
    pub trace_capacity: usize,
    /// Metrics-pipeline staleness: the utilization the HPA reads is this
    /// old (Kubernetes 1.13's metrics-server scraped at 60 s resolution,
    /// so autoscaling decisions lag the workload — one of the mechanisms
    /// behind the paper's slow Fig. 2 ramps). Zero = instant metrics.
    pub metrics_lag: Duration,
    /// Safety cut-off for the simulation.
    pub max_sim_time: Duration,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            cluster: ClusterConfig::default(),
            master: MasterConfig::default(),
            operator: OperatorConfig::default(),
            worker_request: Resources::cores(3, 12_000, 50_000),
            worker_anti_affinity: false,
            worker_image_mb: 500.0,
            master_in_cluster: true,
            master_request: Resources::new(1000, 4_000, 20_000),
            initial_workers: 3,
            max_workers: 20,
            sample_interval: Duration::from_secs(1),
            default_init_time: Duration::from_millis(157_400),
            use_measured_init_time: true,
            node_failures: Vec::new(),
            faults: FaultPlan::default(),
            trace_capacity: 0,
            metrics_lag: Duration::from_secs(60),
            max_sim_time: Duration::from_secs(200_000),
        }
    }
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct RunResult {
    /// Policy label.
    pub label: String,
    /// The full metric series.
    pub recorder: RunRecorder,
    /// The paper-style summary row.
    pub summary: RunSummary,
    /// Workload makespan (first submission → last completion), seconds.
    pub makespan_s: f64,
    /// Full-cycle initialization measurements taken during the run.
    pub init_measurements: Vec<Duration>,
    /// Total simulation events processed.
    pub events: u64,
    /// True if the run hit the safety cut-off before completing.
    pub timed_out: bool,
    /// Tasks that were interrupted (re-queued) at least once.
    pub interrupted_tasks: u64,
    /// Node failures injected during the run.
    pub failures_injected: u64,
    /// Task-layer fault counters (retries, OOM kills, speculation…).
    pub task_faults: hta_workqueue::TaskFaultStats,
    /// Cluster-layer fault counters (pull retries, flaky nodes).
    pub cluster_faults: hta_cluster::ClusterFaultStats,
    /// Workflow jobs that permanently failed / were abandoned.
    pub jobs_failed: usize,
    /// Workflow jobs abandoned because a dependency failed.
    pub jobs_abandoned: usize,
    /// The retained trace tail (empty when tracing was disabled).
    pub trace: TraceRing,
    /// Per-task lifecycle spans (submission/start/completion), for Gantt
    /// rendering and post-run analysis.
    pub task_spans: Vec<TaskSpan>,
    /// Event-stream digest, present when the run was started with
    /// [`SystemDriver::with_digest`] (the `perf --paranoid` double-run
    /// divergence hunter).
    pub digest: Option<DigestReport>,
    /// One report per control-plane crash survived (empty unless
    /// [`ControlPlaneFaults`] were active).
    pub recoveries: Vec<RecoveryReport>,
    /// Open-loop arrival-stream summary (None for workflow-driven runs).
    pub arrivals: Option<ArrivalStats>,
    /// Tasks completed, by counter — includes records retired under
    /// streaming admission, which never appear in `task_spans`.
    pub completed: usize,
    /// Order-insensitive digest over the completed task ids (see
    /// [`Master::completed_digest`]): the completion-set identity that
    /// crash-equivalence checks compare even when records were retired.
    pub completed_digest: u64,
}

/// Global event type.
#[derive(Debug, Clone, Copy)]
enum Event {
    Cluster(ClusterEvent),
    /// A Work Queue event tagged with the master incarnation that
    /// scheduled it. A control-plane crash bumps the incarnation, so every
    /// in-flight master↔worker message addresses a dead master and is
    /// dropped on delivery — the lost-dispatch semantics of a real crash.
    /// Normal (fault-free) runs only ever see incarnation 0.
    Wq(u64, WqEvent),
    PolicyTick,
    Sample,
    /// Failure injection: crash a node hosting a running worker.
    FailWorkerNode,
    /// Periodic control-plane checkpoint tick (scheduled only when
    /// control-plane faults are active — normal runs never see it).
    CheckpointTick,
    /// Failure injection: kill the control plane (master + operator +
    /// policy) at a seeded instant.
    CrashControlPlane,
    /// The control plane comes back after its configured outage and runs
    /// the deterministic reconciliation pass.
    RestartControlPlane,
    /// Wake-up for the open-loop arrival pump, tagged with the master
    /// incarnation that armed it (a crash bumps the incarnation, so a
    /// wake armed before the crash is dropped and the restart pass
    /// re-arms its own). At most one wake is outstanding per incarnation.
    TraceArrival(u64),
}

/// Live crash-recovery machinery, present only when
/// [`ControlPlaneFaults::is_active`] (normal runs carry `None` and pay
/// nothing — no checkpoint events, no WAL appends, no extra branches on
/// the hot path beyond one `Option` test).
#[derive(Clone)]
struct RecoveryState {
    /// The configured fault arm (crash instants, outage, cadence).
    faults: ControlPlaneFaults,
    /// `Some(restart instant)` while the control plane is down.
    down_until: Option<SimTime>,
    /// When the most recent crash hit.
    last_crash_at: SimTime,
    /// The newest durable checkpoint (taken at master-ready, then every
    /// `checkpoint_interval`, then immediately after each recovery).
    checkpoint: Option<Checkpoint<ControlPlaneState>>,
    /// Decision records appended since the last checkpoint.
    wal: Wal<WalRecord>,
    /// Crashes survived.
    crashes: u64,
    /// In-flight tasks re-queued across all recoveries.
    requeued_total: u64,
    /// Total control-plane downtime, seconds.
    outage_total_s: f64,
    /// WAL records replayed across all recoveries.
    wal_replayed_total: u64,
    /// One report per completed crash-recovery cycle.
    reports: Vec<RecoveryReport>,
}

/// The driver.
///
/// `Clone` is the checkpoint operation of the what-if subsystem: a clone
/// is a deep, fully independent copy of the entire system state (event
/// queue, master, cluster, operator, policy, metrics). See
/// [`SystemDriver::fork_branch`] for the RNG-partitioned fork used by
/// counterfactual rollouts.
#[derive(Clone)]
pub struct SystemDriver {
    cfg: DriverConfig,
    cluster: Cluster,
    master: Master,
    operator: Operator,
    policy: Box<dyn ScalingPolicy>,
    tracker: InitTimeTracker,
    recorder: RunRecorder,
    queue: EventQueue<Event>,
    worker_image: ImageId,
    master_image: ImageId,
    pod_to_worker: BTreeMap<PodId, WorkerId>,
    worker_to_pod: BTreeMap<WorkerId, PodId>,
    master_pod: Option<PodId>,
    /// The §V-A deployment objects: the master runs in a single-replica
    /// StatefulSet (sticky identity + persistent volume for intermediate
    /// data) behind one in-cluster and one external Service.
    master_set: StatefulSet,
    services: Vec<Service>,
    master_ready: bool,
    initial_workers_created: bool,
    workload_finished_at: Option<SimTime>,
    cleanup_started: bool,
    interrupted: u64,
    failures_injected: u64,
    /// Open recovery watches: `(crash time, worker count to get back to,
    /// dip seen)` for each injected node crash. A watch arms once the
    /// connected pool actually dips below its pre-crash size and resolves
    /// at the first sample where it is back.
    recovery_watches: Vec<(SimTime, usize, bool)>,
    /// Resolved time-to-recover values (seconds).
    recovery_times: Vec<f64>,
    trace: TraceRing,
    seen_categories: std::collections::BTreeSet<CategoryId>,
    /// `(sampled_at, diluted utilization)` ring for the metrics-pipeline
    /// lag; newest at the back.
    util_history: std::collections::VecDeque<(SimTime, Option<f64>)>,
    /// Reusable effect buffer between the master and the event queue —
    /// steady-state Work Queue dispatch allocates nothing.
    wq_sink: EffectSink<WqEvent>,
    /// Reusable pod-id buffer for the cleanup / scale-down paths.
    pod_scratch: Vec<PodId>,
    /// Reusable label buffer for per-category metric names.
    label_buf: String,
    /// Reusable per-category running-task counts, indexed by
    /// [`CategoryId`]. Re-zeroed every sample.
    per_cat_counts: Vec<u32>,
    /// Event-stream digest (None in normal runs — recording formats every
    /// event, which is far too slow for the measured hot path).
    digest: Option<EventDigest>,
    /// True once [`SystemDriver::start_once`] has bootstrapped the run.
    started: bool,
    /// Master incarnation: bumped on every control-plane crash so stale
    /// in-flight [`Event::Wq`] messages are dropped. Always 0 in normal
    /// runs.
    incarnation: u64,
    /// Crash-recovery machinery (None unless control-plane faults are
    /// active).
    recovery: Option<RecoveryState>,
    /// Open-loop arrival source (None for workflow-driven runs). Part of
    /// the control-plane checkpoint: the trace cursor must restore with
    /// the decisions made from it.
    arrivals: Option<ArrivalSource>,
}

impl SystemDriver {
    /// Build a driver over a workflow with the given policy.
    pub fn new(mut cfg: DriverConfig, workflow: Workflow, policy: Box<dyn ScalingPolicy>) -> Self {
        if cfg.faults.is_active() {
            let plan = cfg.faults.clone();
            plan.apply(&mut cfg.cluster, &mut cfg.master);
            cfg.node_failures
                .extend(plan.node_crash_times.iter().copied());
        }
        let mut cluster = Cluster::new(cfg.cluster.clone());
        let worker_image = cluster
            .registry_mut()
            .register("wq-worker:latest", cfg.worker_image_mb);
        let master_image = cluster.registry_mut().register("wq-master:latest", 300.0);
        let mut master = Master::new(cfg.master.clone(), hta_workqueue::FileCatalog::new());
        let mut operator = Operator::new(cfg.operator.clone(), workflow, &mut master);
        let recovery = if cfg.faults.control_plane.is_active() {
            // Every control-plane decision from the very first submission
            // must be durably logged, so recording starts before bootstrap.
            operator.record_wal(true);
            Some(RecoveryState {
                faults: cfg.faults.control_plane.clone(),
                down_until: None,
                last_crash_at: SimTime::ZERO,
                checkpoint: None,
                wal: Wal::new(),
                crashes: 0,
                requeued_total: 0,
                outage_total_s: 0.0,
                wal_replayed_total: 0,
                reports: Vec::new(),
            })
        } else {
            None
        };
        let tracker = InitTimeTracker::new(cfg.default_init_time);
        let trace = if cfg.trace_capacity > 0 {
            TraceRing::new(cfg.trace_capacity)
        } else {
            TraceRing::disabled()
        };
        SystemDriver {
            cfg,
            cluster,
            master,
            operator,
            policy,
            tracker,
            recorder: RunRecorder::new(),
            queue: EventQueue::new(),
            worker_image,
            master_image,
            pod_to_worker: BTreeMap::new(),
            worker_to_pod: BTreeMap::new(),
            master_pod: None,
            master_set: StatefulSet::new(MASTER_GROUP, 1, 50_000),
            services: vec![
                Service::new(
                    "wq-master-internal",
                    MASTER_GROUP,
                    ServiceKind::ClusterIp,
                    9123,
                ),
                Service::new(
                    "wq-master-external",
                    MASTER_GROUP,
                    ServiceKind::LoadBalancer,
                    9123,
                ),
            ],
            master_ready: false,
            initial_workers_created: false,
            workload_finished_at: None,
            cleanup_started: false,
            interrupted: 0,
            failures_injected: 0,
            recovery_watches: Vec::new(),
            recovery_times: Vec::new(),
            trace,
            seen_categories: std::collections::BTreeSet::new(),
            util_history: std::collections::VecDeque::new(),
            wq_sink: EffectSink::with_capacity(16),
            pod_scratch: Vec::new(),
            label_buf: String::new(),
            per_cat_counts: Vec::new(),
            digest: None,
            started: false,
            incarnation: 0,
            recovery,
            arrivals: None,
        }
    }

    /// Build a driver over an open-loop arrival trace instead of a
    /// workflow: tasks enter the system when the trace says they arrive,
    /// not when a DAG unblocks them. The master runs with streaming
    /// admission ([`MasterConfig::retire_completed`]) so its memory
    /// tracks *in-flight* tasks rather than the full trace length — the
    /// invariant that makes million-task traces runnable.
    pub fn new_traced(
        mut cfg: DriverConfig,
        source: ArrivalSource,
        policy: Box<dyn ScalingPolicy>,
    ) -> Self {
        cfg.master.retire_completed = true;
        let workflow =
            Workflow::from_jobs(Vec::new(), Vec::new()).expect("empty workflow is a valid DAG");
        let mut driver = SystemDriver::new(cfg, workflow, policy);
        driver.arrivals = Some(source);
        driver
    }

    /// Record an event-stream digest during the run (see
    /// [`RunResult::digest`]). Costs a `Debug` format per event — use for
    /// divergence hunting, never for timed runs.
    pub fn with_digest(mut self, cfg: DigestConfig) -> Self {
        self.digest = Some(EventDigest::new(cfg));
        self
    }

    /// Checkpoint the full system state and fork an independent branch.
    ///
    /// The branch is a deep clone; salt `0` keeps the parent's RNG
    /// streams (exact replay of the parent's own future), any other salt
    /// re-partitions every stream via [`SnapshotState::reseed`] for an
    /// independent stochastic future. Forking never mutates the parent —
    /// same-seed parent runs stay bitwise identical whether or not they
    /// were forked (enforced by the fork-determinism property tests).
    ///
    /// The branch never inherits the parent's event digest: digests
    /// describe exactly one run, and a branch is a different run.
    pub fn fork_branch(&self, salt: u64) -> SystemDriver {
        let mut branch = SnapshotState::fork(self, salt);
        branch.digest = None;
        branch
    }

    /// Drain the reusable Work Queue effect sink into the global queue,
    /// tagging every message with the current master incarnation.
    fn flush_wq(&mut self) {
        for (d, e) in self.wq_sink.drain() {
            self.queue.schedule_in(d, Event::Wq(self.incarnation, e));
        }
    }

    /// True while the control plane is crashed (workers keep running; the
    /// master, operator, policy and init-time tracker are frozen).
    fn control_plane_down(&self) -> bool {
        self.recovery
            .as_ref()
            .is_some_and(|r| r.down_until.is_some())
    }

    /// Append the operator's pending decision records to the WAL. Called
    /// after every operator entry point; a no-op in normal runs (recording
    /// is off, so the pending buffer stays empty).
    fn drain_operator_wal(&mut self) {
        if let Some(rs) = self.recovery.as_mut() {
            rs.wal.extend(self.operator.drain_wal_records());
        }
    }

    /// Create (or re-create) the master pod.
    fn create_master_pod(&mut self, now: SimTime) -> PodId {
        let spec = PodSpec {
            request: self.cfg.master_request,
            image: self.master_image,
            group: MASTER_GROUP.into(),
            anti_affinity: false,
        };
        let (pod, fx) = self.cluster.create_pod(now, spec);
        self.master_pod = Some(pod);
        for (d, e) in fx {
            self.queue.schedule_in(d, Event::Cluster(e));
        }
        pod
    }

    /// The Services routing to the master (for introspection/tests).
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    fn worker_pod_spec(&self) -> PodSpec {
        PodSpec {
            request: self.cfg.worker_request,
            image: self.worker_image,
            group: WORKER_GROUP.into(),
            anti_affinity: self.cfg.worker_anti_affinity,
        }
    }

    /// Worker pods not yet terminal (pending + running).
    fn live_worker_pods(&self) -> usize {
        self.cluster.group_replicas(WORKER_GROUP)
    }

    /// Worker pods still waiting for a node / image.
    fn pending_worker_pod_count(&self) -> usize {
        self.cluster
            .live_pods_in_group(WORKER_GROUP)
            .filter(|p| !matches!(p.phase, PodPhase::Running))
            .count()
    }

    /// Collect the pending worker pods into the reusable scratch buffer
    /// (cleanup and scale-down paths).
    fn collect_pending_pods(&mut self) {
        self.pod_scratch.clear();
        self.pod_scratch.extend(
            self.cluster
                .live_pods_in_group(WORKER_GROUP)
                .filter(|p| !matches!(p.phase, PodPhase::Running))
                .map(|p| p.id),
        );
    }

    /// Run to completion (or the safety cut-off).
    pub fn run(mut self) -> RunResult {
        self.start_once();
        let deadline = SimTime::ZERO + self.cfg.max_sim_time;
        let (timed_out, _) = self.run_loop(deadline, u64::MAX);
        self.finalize(timed_out)
    }

    /// Advance the run up to (and including) simulated time `until`,
    /// processing events exactly as [`SystemDriver::run`] would, then
    /// return with the driver mid-flight. Unlike the run loop's deadline
    /// cut-off this never discards an event: it only pops events whose
    /// timestamp is `≤ until`, so a run that is advanced in pieces and
    /// then finished with [`SystemDriver::run`] is event-for-event
    /// identical to one straight `run()` call.
    ///
    /// This is the decision-point hook for what-if tooling: advance to a
    /// moment of interest, interrogate the driver via
    /// [`WhatIf`], then keep running. Returns true once the run is
    /// finished.
    pub fn advance_until(&mut self, until: SimTime) -> bool {
        self.start_once();
        while self.queue.peek_time().is_some_and(|t| t <= until) {
            let Some((now, ev)) = self.queue.pop() else {
                break;
            };
            self.dispatch(now, ev);
            if self.is_finished() {
                return true;
            }
        }
        self.is_finished()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Worker pods not yet terminal (pending + running), for
    /// introspection at a decision point.
    pub fn live_workers(&self) -> usize {
        self.live_worker_pods()
    }

    /// Tasks the master has completed so far, for introspection at a
    /// decision point (what-if branch deltas are measured against this).
    pub fn completed_tasks(&self) -> usize {
        self.master.completed_count()
    }

    /// Bootstrap on the first call; later calls are no-ops.
    fn start_once(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let start = SimTime::ZERO;
        for (d, e) in self.cluster.bootstrap(start) {
            self.queue.schedule_in(d, Event::Cluster(e));
        }
        if self.cfg.master_in_cluster {
            let pod = self.create_master_pod(start);
            self.master_set.bind(pod);
            debug_assert!(self.master_set.fully_bound());
        } else {
            self.master_ready = true;
            self.on_master_ready(start);
        }
        self.pump(start);
        self.queue.schedule_in(Duration::ZERO, Event::Sample);
        self.queue
            .schedule_in(Duration::from_secs(1), Event::PolicyTick);
        for at in self.cfg.node_failures.clone() {
            self.queue.schedule_in(at, Event::FailWorkerNode);
        }
        let crash_times: Vec<Duration> = self
            .recovery
            .as_ref()
            .map(|r| r.faults.crash_times.clone())
            .unwrap_or_default();
        for at in crash_times {
            self.queue.schedule_in(at, Event::CrashControlPlane);
        }
    }

    /// The event loop: pop-and-dispatch until the workload resolves, the
    /// deadline passes, or `max_events` have been processed this call.
    ///
    /// Returns `(timed_out, budget_exhausted)`. The deadline check runs
    /// *after* the pop on purpose — the over-deadline event still counts
    /// into `delivered`, which keeps event totals (and every golden
    /// fingerprint built on them) identical to the historical behaviour.
    fn run_loop(&mut self, deadline: SimTime, max_events: u64) -> (bool, bool) {
        let mut timed_out = false;
        let mut budget_exhausted = false;
        let mut processed: u64 = 0;
        while let Some((now, ev)) = self.queue.pop() {
            if now > deadline {
                timed_out = true;
                break;
            }
            self.dispatch(now, ev);
            if self.is_finished() {
                break;
            }
            processed += 1;
            if processed >= max_events {
                budget_exhausted = true;
                break;
            }
        }
        (timed_out, budget_exhausted)
    }

    /// Process one popped event: digest, dispatch to the owning
    /// component, then pump cross-component plumbing.
    fn dispatch(&mut self, now: SimTime, ev: Event) {
        if let Some(d) = self.digest.as_mut() {
            d.record(now.as_millis(), &ev);
        }
        match ev {
            Event::Cluster(ce) => {
                for (d, e) in self.cluster.handle(now, ce) {
                    self.queue.schedule_in(d, Event::Cluster(e));
                }
            }
            Event::Wq(inc, we) => {
                // A message from a dead master incarnation is dropped: the
                // worker it came from (or was headed to) was talking to a
                // master that no longer exists. The recovered master
                // re-queues the orphaned work instead.
                if inc == self.incarnation {
                    self.master.handle(now, we, &mut self.wq_sink);
                    self.flush_wq();
                }
            }
            Event::PolicyTick => self.policy_tick(now),
            Event::Sample => {
                self.sample(now);
                self.queue
                    .schedule_in(self.cfg.sample_interval, Event::Sample);
            }
            Event::FailWorkerNode => self.fail_worker_node(now),
            Event::CheckpointTick => self.checkpoint_tick(now),
            Event::CrashControlPlane => self.crash_control_plane(now),
            Event::RestartControlPlane => self.restart_control_plane(now),
            Event::TraceArrival(inc) => {
                // A wake armed by a dead master incarnation is dropped;
                // the restart pass armed a fresh one for the backlog.
                if inc == self.incarnation {
                    self.pump_arrivals(now);
                }
            }
        }
        self.pump(now);
    }

    /// Admit every trace arrival that is due, then arm one wake-up for
    /// the next one. During a control-plane outage the pump stays quiet
    /// — arrivals accumulate in the trace (clients retrying against a
    /// dead endpoint) and the restart pass admits the backlog.
    fn pump_arrivals(&mut self, now: SimTime) {
        if self.control_plane_down() || self.cleanup_started {
            return;
        }
        let Some(mut arrivals) = self.arrivals.take() else {
            return;
        };
        while let Some(spec) = arrivals.pop_due(now) {
            self.operator
                .submit_trace(now, spec, &mut self.master, &mut self.wq_sink);
        }
        self.flush_wq();
        self.drain_operator_wal();
        if let Some(next) = arrivals.peek_next_time() {
            self.queue
                .schedule_in(next.since(now), Event::TraceArrival(self.incarnation));
        }
        self.arrivals = Some(arrivals);
    }

    /// True when nothing will ever need the pool again: the workflow is
    /// resolved (vacuously true for the empty workflow of a traced run)
    /// and, for traced runs, the trace is drained *and* every admitted
    /// task reached a terminal state. Replaces bare
    /// `operator.all_complete()` checks — those would declare an open-loop
    /// run finished while arrivals were still in flight.
    fn workload_resolved(&mut self) -> bool {
        if !self.operator.all_complete() {
            return false;
        }
        match self.arrivals.as_mut() {
            None => true,
            Some(a) => a.exhausted() && self.master.all_complete(),
        }
    }

    /// Tear down into a [`RunResult`].
    fn finalize(mut self, timed_out: bool) -> RunResult {
        // Final sample so the series reflect the drained end state (the
        // loop exits on pod events, which can land between sample ticks).
        let now = self.queue.now();
        self.sample(now);
        let end = self.workload_finished_at.unwrap_or(now).as_secs_f64();
        self.recorder.finish(end);
        let label = self.policy.name();
        let mut summary = self.recorder.summary(label.clone());
        let task_faults = self.master.fault_stats();
        let cluster_faults = self.cluster.fault_stats();
        let (jobs_failed, jobs_abandoned) = self.operator.failure_counts();
        summary.faults = FaultSummary {
            task_retries: task_faults.retries,
            transient_failures: task_faults.transient_failures,
            oom_kills: task_faults.oom_kills,
            permanent_failures: task_faults.permanent_failures,
            jobs_abandoned: jobs_abandoned as u64,
            speculative_launched: task_faults.speculative_launched,
            speculative_wins: task_faults.speculative_wins,
            wasted_core_s: task_faults.wasted_core_s,
            image_pull_retries: cluster_faults.image_pull_retries,
            image_pull_gaveups: cluster_faults.image_pull_gaveups,
            node_faults: self.failures_injected + cluster_faults.node_faults,
            mean_recovery_s: if self.recovery_times.is_empty() {
                0.0
            } else {
                self.recovery_times.iter().sum::<f64>() / self.recovery_times.len() as f64
            },
            master_crashes: self.recovery.as_ref().map_or(0, |r| r.crashes),
            recovery_requeued: self.recovery.as_ref().map_or(0, |r| r.requeued_total),
            outage_s: self.recovery.as_ref().map_or(0.0, |r| r.outage_total_s),
            checkpoints_taken: self.recovery.as_ref().map_or(0, |r| r.wal.truncations()),
            wal_replayed: self.recovery.as_ref().map_or(0, |r| r.wal_replayed_total),
            msgs_dropped: self.master.net_stats().dropped,
            msgs_duplicated: self.master.net_stats().duplicated,
            msgs_reordered: self.master.net_stats().reordered,
            leases_expired: self.master.leases_expired(),
            zombies_fenced: self.master.zombies_fenced(),
            partition_s: self
                .master
                .net_config()
                .partition_seconds(Duration::from_secs_f64(end)),
        };
        let task_spans: Vec<TaskSpan> = self
            .master
            .task_records()
            .map(|r| TaskSpan {
                label: r.spec.id.to_string(),
                category: r.spec.category.clone(),
                submitted_s: r.submitted_at.as_secs_f64(),
                started_s: r.started_at.map(|t| t.as_secs_f64()),
                completed_s: r.completed_at.map(|t| t.as_secs_f64()),
                interruptions: r.interruptions,
            })
            .collect();
        let digest = self.digest.take().map(EventDigest::report);
        let recoveries = self.recovery.take().map(|r| r.reports).unwrap_or_default();
        let arrivals = self.arrivals.as_ref().map(ArrivalSource::stats);
        RunResult {
            label,
            digest,
            recoveries,
            arrivals,
            completed: self.master.completed_count(),
            completed_digest: self.master.completed_digest(),
            makespan_s: end,
            summary,
            init_measurements: self.tracker.measurements().to_vec(),
            events: self.queue.delivered(),
            timed_out,
            interrupted_tasks: self.interrupted,
            failures_injected: self.failures_injected,
            task_faults,
            cluster_faults,
            jobs_failed,
            jobs_abandoned,
            trace: self.trace,
            task_spans,
            recorder: self.recorder,
        }
    }

    /// True once the workload is done and every cluster object we created
    /// has reached a terminal phase.
    fn is_finished(&self) -> bool {
        if self.workload_finished_at.is_none() {
            return false;
        }
        if self.live_worker_pods() > 0 {
            return false;
        }
        match self.master_pod {
            Some(pod) => self
                .cluster
                .pod(pod)
                .map(|p| p.phase.is_terminal())
                .unwrap_or(true),
            None => true,
        }
    }

    /// Cross-component plumbing: drain informer events and master
    /// notifications until both are quiet.
    fn pump(&mut self, now: SimTime) {
        loop {
            let watch = self.cluster.drain_watch();
            let notes = self.master.drain_notifications();
            if watch.is_empty() && notes.is_empty() {
                break;
            }
            // During a control-plane outage the informer consumer is down
            // with it: pod-lifecycle events still happen (the data plane
            // keeps running) but nobody measures init times or adopts
            // fresh workers until the restart reconciliation.
            let down = self.control_plane_down();
            if !down {
                self.tracker.observe_all(watch.iter());
            }
            for ev in &watch {
                match ev.kind {
                    WatchKind::PodRunning(_) => {
                        if down {
                            // The pod keeps running; if it survives the
                            // outage the recovery pass re-adopts it from
                            // the watch-stream snapshot.
                            continue;
                        }
                        if Some(ev.pod) == self.master_pod && !self.master_ready {
                            self.master_ready = true;
                            self.on_master_ready(now);
                        } else if self
                            .cluster
                            .pod(ev.pod)
                            .is_some_and(|p| p.spec.group == WORKER_GROUP)
                        {
                            let wid = self.master.worker_connect(
                                now,
                                self.cfg.worker_request,
                                &mut self.wq_sink,
                            );
                            self.pod_to_worker.insert(ev.pod, wid);
                            self.worker_to_pod.insert(wid, ev.pod);
                            self.flush_wq();
                        }
                    }
                    WatchKind::PodFailed => {
                        if Some(ev.pod) == self.master_pod && !self.cleanup_started {
                            // StatefulSet semantics: the replacement pod
                            // takes the same sticky ordinal; queue state
                            // and intermediate data survive on the
                            // persistent volume (§V-A).
                            self.master_set.unbind(ev.pod);
                            self.trace.push(
                                now,
                                "driver",
                                format!("master pod {} lost; StatefulSet restarting it", ev.pod),
                            );
                            let pod = self.create_master_pod(now);
                            self.master_set.bind(pod);
                        }
                        if let Some(wid) = self.pod_to_worker.remove(&ev.pod) {
                            self.trace.push(
                                now,
                                "driver",
                                format!("worker pod {} killed ({wid})", ev.pod),
                            );
                            self.worker_to_pod.remove(&wid);
                            self.master.kill_worker(now, wid, &mut self.wq_sink);
                            self.flush_wq();
                        }
                    }
                    _ => {}
                }
            }
            for note in notes {
                match note {
                    WqNotification::TaskCompleted {
                        task,
                        cat,
                        measured,
                    } => {
                        // Log the acknowledgement *before* handling it:
                        // the handler's own decisions (learning commits,
                        // released warm-up holds) append their records
                        // after this one, preserving causal replay order.
                        if let Some(rs) = self.recovery.as_mut() {
                            rs.wal.append(WalRecord::Complete { task, at: now });
                        }
                        self.operator.on_task_completed(
                            now,
                            task,
                            cat,
                            measured,
                            &mut self.master,
                            &mut self.wq_sink,
                        );
                        self.flush_wq();
                        self.drain_operator_wal();
                        if self.workload_resolved() && self.workload_finished_at.is_none() {
                            self.workload_finished_at = Some(now);
                            self.trace
                                .push(now, "driver", "workload complete; cleanup".into());
                            self.start_cleanup(now);
                        }
                    }
                    WqNotification::TaskRequeued(t) => {
                        self.interrupted += 1;
                        self.trace
                            .push(now, "wq", format!("{t} re-queued (worker killed)"));
                    }
                    WqNotification::TaskFastAborted(t) => {
                        self.interrupted += 1;
                        self.trace
                            .push(now, "wq", format!("{t} fast-aborted (straggler)"));
                    }
                    WqNotification::TaskFailed { task, cat } => {
                        if self.trace.is_enabled() {
                            let name = self.master.interner().name(cat);
                            self.trace.push(
                                now,
                                "wq",
                                format!("{task} permanently failed ({name})"),
                            );
                        }
                        if let Some(rs) = self.recovery.as_mut() {
                            rs.wal.append(WalRecord::Fail { task, at: now });
                        }
                        self.operator.on_task_failed(
                            now,
                            task,
                            cat,
                            &mut self.master,
                            &mut self.wq_sink,
                        );
                        self.flush_wq();
                        self.drain_operator_wal();
                        // Graceful degradation can resolve the workflow
                        // with failures: the cleanup path is the same.
                        if self.workload_resolved() && self.workload_finished_at.is_none() {
                            self.workload_finished_at = Some(now);
                            self.trace.push(
                                now,
                                "driver",
                                "workload resolved (with failures); cleanup".into(),
                            );
                            self.start_cleanup(now);
                        }
                    }
                    WqNotification::WorkerStopped(wid) => {
                        if let Some(pod) = self.worker_to_pod.remove(&wid) {
                            self.pod_to_worker.remove(&pod);
                            for (d, e) in self.cluster.complete_pod(now, pod) {
                                self.queue.schedule_in(d, Event::Cluster(e));
                            }
                        }
                    }
                }
            }
        }
    }

    /// The master pod is up: create the initial worker pods and submit the
    /// first batch of jobs (warm-up stage, §V-C).
    fn on_master_ready(&mut self, now: SimTime) {
        if !self.initial_workers_created {
            self.initial_workers_created = true;
            for _ in 0..self.cfg.initial_workers.min(self.cfg.max_workers) {
                let (_pod, fx) = self.cluster.create_pod(now, self.worker_pod_spec());
                for (d, e) in fx {
                    self.queue.schedule_in(d, Event::Cluster(e));
                }
            }
        }
        // Checkpoint #0 is taken *before* the first submission wave so the
        // WAL (recording since construction) covers every decision ever
        // made on top of it, and the periodic cadence starts here.
        if self
            .recovery
            .as_ref()
            .is_some_and(|r| r.checkpoint.is_none())
        {
            self.take_checkpoint(now);
            let interval = self
                .recovery
                .as_ref()
                .expect("checked above")
                .faults
                .checkpoint_interval;
            self.queue.schedule_in(interval, Event::CheckpointTick);
        }
        self.operator
            .submit_ready(now, &mut self.master, &mut self.wq_sink);
        self.flush_wq();
        self.drain_operator_wal();
        // Open-loop arrivals start flowing once the master can take them.
        // Armed *after* checkpoint #0 so every admission is WAL-covered.
        self.pump_arrivals(now);
    }

    /// Capture the full control plane into a fresh checkpoint and truncate
    /// the WAL it supersedes.
    fn take_checkpoint(&mut self, now: SimTime) {
        let state = ControlPlaneState {
            master: self.master.clone(),
            operator: self.operator.clone(),
            policy: self.policy.clone(),
            tracker: self.tracker.clone(),
            arrivals: self.arrivals.clone(),
        };
        let rs = self
            .recovery
            .as_mut()
            .expect("checkpointing without control-plane faults");
        rs.checkpoint = Some(Checkpoint::take(&state, now));
        rs.wal.truncate();
    }

    /// Periodic checkpoint cadence (control-plane faults active only).
    fn checkpoint_tick(&mut self, now: SimTime) {
        let Some(rs) = self.recovery.as_ref() else {
            return;
        };
        if self.cleanup_started {
            // Workload resolved; nothing left worth checkpointing and the
            // cadence can die with the run.
            return;
        }
        let interval = rs.faults.checkpoint_interval;
        if rs.down_until.is_some() {
            // Crashed processes take no checkpoints; the restart path
            // takes its own post-recovery one. Keep the cadence alive.
            self.queue.schedule_in(interval, Event::CheckpointTick);
            return;
        }
        self.take_checkpoint(now);
        self.queue.schedule_in(interval, Event::CheckpointTick);
    }

    /// Failure injection: the control plane dies. Workers keep running
    /// (they are cluster pods, not control-plane state), but every
    /// in-flight master↔worker message is now addressed to a dead
    /// incarnation and will be dropped.
    fn crash_control_plane(&mut self, now: SimTime) {
        let Some(rs) = self.recovery.as_mut() else {
            return;
        };
        if !self.master_ready
            || self.cleanup_started
            || rs.down_until.is_some()
            || rs.checkpoint.is_none()
        {
            // Nothing to crash yet (or already down, or already winding
            // down) — the injection is a no-op, like a node crash with no
            // running worker.
            return;
        }
        let outage = rs.faults.outage;
        rs.crashes += 1;
        rs.last_crash_at = now;
        rs.down_until = Some(now + outage);
        self.incarnation += 1;
        // The driver's pod↔worker adoption maps are control-plane memory:
        // the restarted master re-learns them from the watch stream.
        self.pod_to_worker.clear();
        self.worker_to_pod.clear();
        self.trace.push(
            now,
            "fault",
            format!(
                "control plane crashed (incarnation {}), restart in {}s",
                self.incarnation,
                outage.as_secs_f64()
            ),
        );
        self.queue.schedule_in(outage, Event::RestartControlPlane);
    }

    /// The deterministic reconciliation pass: restore the checkpoint,
    /// reset its data-plane beliefs, replay the WAL, reconcile warm-up
    /// probes, re-adopt surviving workers, resume submissions, and
    /// re-checkpoint.
    fn restart_control_plane(&mut self, now: SimTime) {
        let (state, records, crashed_at, checkpoint_at) = {
            let Some(rs) = self.recovery.as_mut() else {
                return;
            };
            if rs.down_until.is_none() {
                return;
            }
            rs.down_until = None;
            let cp = rs
                .checkpoint
                .as_ref()
                .expect("crashes are ignored before checkpoint #0");
            (
                cp.restore(),
                rs.wal.records().to_vec(),
                rs.last_crash_at,
                cp.taken_at(),
            )
        };
        // 1. Restore the control plane to its checkpoint. The trace
        // cursor is control-plane state too: arrivals admitted after the
        // checkpoint rewind with it and re-admit through WAL replay.
        let ControlPlaneState {
            master,
            operator,
            policy,
            tracker,
            arrivals,
        } = state;
        self.master = master;
        self.operator = operator;
        self.policy = policy;
        self.tracker = tracker;
        self.arrivals = arrivals;
        // 2. The checkpoint believes in workers and in-flight transfers
        // from before the crash. Reset those beliefs: every worker is
        // unknown until re-adopted, every Staging/Running/Returning task
        // is re-queued exactly once.
        let tasks_requeued = self.master.recover_reset_data_plane(now);
        // 3. Replay the decision log on top. Submits re-enter with their
        // originally sampled specs (no randomness re-drawn); terminal
        // acknowledgements re-apply at their original instants.
        let wal_replayed = records.len();
        for rec in records {
            match rec {
                WalRecord::Submit { job, spec } => {
                    self.operator.replay_submit(
                        now,
                        job,
                        spec,
                        &mut self.master,
                        &mut self.wq_sink,
                    );
                }
                WalRecord::Learn { cat, resources } => {
                    self.operator.replay_learn(cat, resources, &mut self.master);
                }
                WalRecord::Complete { task, at } => {
                    self.master.recover_complete(at, task);
                    self.operator.replay_complete(task);
                }
                WalRecord::Fail { task, at } => {
                    let cat = self.master.task(task).map(|r| r.cat);
                    self.master.recover_failed(at, task);
                    if let Some(cat) = cat {
                        self.operator.replay_fail(task, cat);
                    }
                }
                WalRecord::TraceSubmit { spec } => {
                    // Advance the restored cursor one event: the
                    // generator re-derives this arrival from its rewound
                    // RNG streams, so the logged spec and the cursor stay
                    // in lockstep (checked) and no randomness is re-drawn
                    // for arrivals the old incarnation already admitted.
                    if let Some(a) = self.arrivals.as_mut() {
                        let regenerated = a.replay_next().map(|(_, s)| s);
                        debug_assert_eq!(
                            regenerated.as_ref(),
                            Some(&spec),
                            "trace cursor diverged from the WAL"
                        );
                    }
                    self.operator.replay_trace_submit(
                        now,
                        spec,
                        &mut self.master,
                        &mut self.wq_sink,
                    );
                }
            }
        }
        // Replay dispatch effects go nowhere (no workers are connected
        // yet) but must still drain under the new incarnation.
        self.flush_wq();
        // 4. Warm-up probes whose task died with the crash (submitted
        // after the checkpoint, lost with the WAL-truncating recovery
        // semantics, or orphaned mid-flight) are re-aimed. These are
        // *fresh* decisions and log normally.
        self.operator
            .reconcile_probes(now, &mut self.master, &mut self.wq_sink);
        self.flush_wq();
        self.drain_operator_wal();
        // 5. Re-adopt the workers that survived the outage, in PodId
        // order (deterministic), via the cluster watch-state snapshot.
        let mut survivors: Vec<PodId> = self
            .cluster
            .live_pods_in_group(WORKER_GROUP)
            .filter(|p| matches!(p.phase, PodPhase::Running))
            .map(|p| p.id)
            .collect();
        survivors.sort();
        let workers_readopted = survivors.len();
        for pod in survivors {
            let wid = self
                .master
                .worker_connect(now, self.cfg.worker_request, &mut self.wq_sink);
            self.pod_to_worker.insert(pod, wid);
            self.worker_to_pod.insert(wid, pod);
        }
        self.flush_wq();
        // 6. Resume submissions the crash interrupted (jobs whose parents
        // completed while the WAL was being replayed), and re-arm the
        // arrival pump under the new incarnation — arrivals that landed
        // during the outage are clients retrying, admitted now as fresh
        // (WAL-logged) decisions.
        self.operator
            .submit_ready(now, &mut self.master, &mut self.wq_sink);
        self.flush_wq();
        self.drain_operator_wal();
        self.pump_arrivals(now);
        if self.workload_resolved() && self.workload_finished_at.is_none() {
            self.workload_finished_at = Some(now);
            self.trace.push(
                now,
                "driver",
                "workload complete at recovery; cleanup".into(),
            );
            self.start_cleanup(now);
        }
        // 7. The metrics-pipeline history predates the crash; a restarted
        // metrics server starts scraping from scratch.
        self.util_history.clear();
        // 8. Post-recovery checkpoint: the replayed decisions are now part
        // of durable state, so a second crash replays from here.
        self.take_checkpoint(now);
        // 9. Bookkeeping.
        let report = RecoveryReport {
            crashed_at,
            recovered_at: now,
            checkpoint_at,
            wal_replayed,
            tasks_requeued,
            workers_readopted,
        };
        let rs = self.recovery.as_mut().expect("checked on entry");
        rs.requeued_total += tasks_requeued as u64;
        rs.wal_replayed_total += wal_replayed as u64;
        rs.outage_total_s += now.since(crashed_at).as_secs_f64();
        rs.reports.push(report);
        self.trace.push(
            now,
            "driver",
            format!(
                "control plane recovered: {wal_replayed} WAL records, \
                 {tasks_requeued} tasks re-queued, {workers_readopted} workers re-adopted"
            ),
        );
        self.master.assert_invariants();
    }

    /// Clean-up stage: drain every worker, delete pending worker pods and
    /// the master pod.
    fn start_cleanup(&mut self, now: SimTime) {
        if self.cleanup_started {
            return;
        }
        self.cleanup_started = true;
        self.collect_pending_pods();
        for i in 0..self.pod_scratch.len() {
            let pod = self.pod_scratch[i];
            for (d, e) in self.cluster.delete_pod(now, pod) {
                self.queue.schedule_in(d, Event::Cluster(e));
            }
        }
        for (&wid, _) in self.worker_to_pod.iter() {
            self.master.drain_worker(now, wid);
        }
        if let Some(pod) = self.master_pod {
            for (d, e) in self.cluster.delete_pod(now, pod) {
                self.queue.schedule_in(d, Event::Cluster(e));
            }
        }
    }

    fn policy_tick(&mut self, now: SimTime) {
        if self.cleanup_started {
            // Keep draining stragglers (workers that were mid-task when
            // cleanup began finish and stop on their own; pending pods are
            // already deleted). No policy involvement needed.
            self.queue
                .schedule_in(Duration::from_secs(10), Event::PolicyTick);
            return;
        }
        // A crashed control plane makes no scaling decisions — the policy
        // is frozen inside the checkpoint and resumes, with its recovered
        // estimates, once reconciliation finishes.
        if self.control_plane_down() {
            self.queue
                .schedule_in(Duration::from_secs(5), Event::PolicyTick);
            return;
        }
        // Autoscaling belongs to the runtime stage (§V-C): before the
        // master is up there is no queue to read and the initial worker
        // pool has not been created, so a policy acting now would race
        // the set-up (an HPA would double-create its minimum replicas).
        if !self.master_ready {
            self.queue
                .schedule_in(Duration::from_secs(5), Event::PolicyTick);
            return;
        }
        let held = self.operator.held_jobs();
        let pending = self.pending_worker_pod_count();
        let utilization = self.lagged_utilization(now);
        let live = self.live_worker_pods();
        let workload_done = self.workload_resolved();
        let init_time = if self.cfg.use_measured_init_time {
            self.tracker.latest()
        } else {
            self.cfg.default_init_time
        };
        // Refresh the incremental snapshot once, then hand the policy
        // borrowed views — no per-tick queue rebuild.
        self.master.refresh_queue_status();
        // Swap the policy out so it can be handed `&self` as a what-if
        // world alongside the borrowed context views. The HoldPolicy
        // placeholder is what a forked branch sees as "its" policy, which
        // is exactly the frozen-pool rollout semantics branches want.
        let mut policy: Box<dyn ScalingPolicy> =
            std::mem::replace(&mut self.policy, Box::new(crate::policy::HoldPolicy));
        let ctx = PolicyContext {
            now,
            queue: self.master.snapshot(),
            interner: self.master.interner(),
            held_jobs: &held,
            stats: self.operator.stats(),
            init_time,
            worker_unit: self.cfg.worker_request,
            live_worker_pods: live,
            pending_worker_pods: pending,
            utilization,
            max_workers: self.cfg.max_workers,
            workload_done,
            telemetry_age: self.master.telemetry_age(now),
        };
        let (action, next) = policy.decide_with_world(&ctx, &*self);
        if self.trace.is_enabled() && action != ScaleAction::None {
            self.trace.push(
                now,
                "policy",
                format!(
                    "{:?} (live={} pending={} waiting={} init={:.0}s)",
                    action,
                    ctx.live_worker_pods,
                    ctx.pending_worker_pods,
                    ctx.queue.waiting.len(),
                    ctx.init_time.as_secs_f64()
                ),
            );
        }
        self.policy = policy;
        self.apply_action(now, action);
        self.queue
            .schedule_in(next.max(Duration::from_secs(1)), Event::PolicyTick);
    }

    /// Translate a policy decision into cluster/master operations.
    fn apply_action(&mut self, now: SimTime, action: ScaleAction) {
        match action {
            ScaleAction::None => {}
            ScaleAction::CreateWorkers(n) => {
                let headroom = self.cfg.max_workers.saturating_sub(self.live_worker_pods());
                for _ in 0..n.min(headroom) {
                    let (_pod, fx) = self.cluster.create_pod(now, self.worker_pod_spec());
                    for (d, e) in fx {
                        self.queue.schedule_in(d, Event::Cluster(e));
                    }
                }
            }
            ScaleAction::DrainWorkers(n) => self.drain_workers(now, n),
            ScaleAction::KillWorkers(n) => self.kill_workers(now, n),
        }
    }

    /// HTA-style graceful scale-down: delete pending pods first (nothing
    /// runs on them), then drain idle workers, then the least-loaded.
    fn drain_workers(&mut self, now: SimTime, n: usize) {
        let mut remaining = n;
        self.collect_pending_pods();
        for i in 0..self.pod_scratch.len() {
            if remaining == 0 {
                return;
            }
            let pod = self.pod_scratch[i];
            for (d, e) in self.cluster.delete_pod(now, pod) {
                self.queue.schedule_in(d, Event::Cluster(e));
            }
            remaining -= 1;
        }
        // Active workers ordered: idle first, then by ascending task count.
        let mut candidates: Vec<(usize, WorkerId)> = self
            .worker_to_pod
            .keys()
            .filter_map(|w| {
                let worker = self.master.worker(*w)?;
                (worker.state == WorkerState::Active).then_some((worker.task_count(), *w))
            })
            .collect();
        candidates.sort();
        for (_tasks, wid) in candidates.into_iter().take(remaining) {
            self.master.drain_worker(now, wid);
        }
    }

    /// HPA-style eviction: pending (not-ready) pods first — matching the
    /// ReplicaSet downscale preference — then idle, then busy workers,
    /// whose tasks are re-queued.
    fn kill_workers(&mut self, now: SimTime, n: usize) {
        let mut remaining = n;
        self.collect_pending_pods();
        for i in 0..self.pod_scratch.len() {
            if remaining == 0 {
                return;
            }
            let pod = self.pod_scratch[i];
            for (d, e) in self.cluster.delete_pod(now, pod) {
                self.queue.schedule_in(d, Event::Cluster(e));
            }
            remaining -= 1;
        }
        let mut candidates: Vec<(usize, PodId)> = self
            .pod_to_worker
            .iter()
            .filter_map(|(pod, wid)| {
                let worker = self.master.worker(*wid)?;
                (worker.state != WorkerState::Stopped).then_some((worker.task_count(), *pod))
            })
            .collect();
        candidates.sort();
        for (_tasks, pod) in candidates.into_iter().take(remaining) {
            // delete_pod → PodFailed watch event → kill_worker in pump().
            for (d, e) in self.cluster.delete_pod(now, pod) {
                self.queue.schedule_in(d, Event::Cluster(e));
            }
        }
    }

    /// Failure injection: crash the node under some running worker pod.
    /// No-op when no worker is running (nothing interesting to kill).
    ///
    /// Victim selection is deterministic: `pod_to_worker` is a `BTreeMap`,
    /// so iteration is ordered by `PodId` and the victim is always the
    /// running worker pod with the lowest id — two same-seed runs crash
    /// the same node at the same instant.
    fn fail_worker_node(&mut self, now: SimTime) {
        let target = self
            .pod_to_worker
            .keys()
            .filter_map(|pid| self.cluster.pod(*pid))
            .filter(|p| p.phase == hta_cluster::PodPhase::Running)
            .filter_map(|p| p.node)
            .next();
        if let Some(node) = target {
            self.failures_injected += 1;
            // Time-to-recover watch: resolved at the first sample where
            // the connected pool is back at its pre-crash size.
            self.recovery_watches
                .push((now, self.master.connected_workers(), false));
            self.trace
                .push(now, "inject", format!("node {node} crashed"));
            for (d, e) in self.cluster.fail_node(now, node) {
                self.queue.schedule_in(d, Event::Cluster(e));
            }
        }
    }

    /// The utilization the metrics pipeline reports *right now*.
    ///
    /// Kubernetes HPA semantics: pods without metrics (pending — still
    /// waiting for a node or an image) are averaged in at 0 % usage on
    /// scale-up. This dilution is one of the two mechanisms that stall
    /// the paper's Fig. 2 ramps while each batch of fresh nodes
    /// provisions (the other being the pipeline staleness below).
    fn current_utilization(&self) -> Option<f64> {
        let live = self.live_worker_pods();
        if live == 0 {
            self.master.mean_worker_utilization()
        } else {
            let connected_sum = self
                .master
                .mean_worker_utilization()
                .map(|m| m * self.master.connected_workers() as f64)
                .unwrap_or(0.0);
            Some(connected_sum / live as f64)
        }
    }

    /// The utilization as the HPA sees it: the newest pipeline sample at
    /// least `metrics_lag` old (falling back to the oldest sample, then
    /// to the live value when no history exists yet).
    fn lagged_utilization(&self, now: SimTime) -> Option<f64> {
        if self.cfg.metrics_lag.is_zero() {
            return self.current_utilization();
        }
        let mut candidate: Option<Option<f64>> = None;
        for &(t, u) in self.util_history.iter() {
            if now.since(t) >= self.cfg.metrics_lag {
                candidate = Some(u);
            } else {
                break;
            }
        }
        match candidate {
            Some(u) => u,
            // Pipeline has no old-enough scrape yet: report the oldest
            // one (or the live value before any sample exists).
            None => self
                .util_history
                .front()
                .map(|&(_, u)| u)
                .unwrap_or_else(|| self.current_utilization()),
        }
    }

    /// Record one metrics sample.
    ///
    /// Definitions follow §IV-B as used in the evaluation tables:
    /// **RS** = cores of connected workers; **RIU** = cores held by
    /// running jobs; **RSH** = the *provisionable* unmet demand — demand
    /// beyond current supply, capped at the maximum resource quota
    /// ("there usually exists a maximum resource quota depending on the
    /// user budget"), which is what an autoscaler could still fix.
    fn sample(&mut self, now: SimTime) {
        // Resolve open time-to-recover watches. Watches still open when
        // cleanup begins never resolve (the pool shrinks on purpose).
        if !self.recovery_watches.is_empty() && !self.cleanup_started {
            let connected = self.master.connected_workers();
            let t = now.as_secs_f64();
            let mut resolved = Vec::new();
            for w in &mut self.recovery_watches {
                if !w.2 {
                    w.2 = connected < w.1;
                } else if connected >= w.1 {
                    resolved.push(now.since(w.0).as_secs_f64());
                    w.1 = usize::MAX; // mark for removal
                }
            }
            self.recovery_watches.retain(|w| w.1 != usize::MAX);
            for r in resolved {
                self.recovery_times.push(r);
                self.recorder.record_extra("recovery_s", t, r);
            }
        }
        // Feed the (laggy) metrics pipeline.
        let util_now = self.current_utilization();
        self.util_history.push_back((now, util_now));
        let horizon = self
            .cfg
            .metrics_lag
            .saturating_add(Duration::from_secs(120));
        while let Some(&(t, _)) = self.util_history.front() {
            if now.since(t) > horizon && self.util_history.len() > 2 {
                self.util_history.pop_front();
            } else {
                break;
            }
        }
        // The worker/running views of the snapshot are always current;
        // the waiting queue is summarized by the demand histogram, so
        // the per-second sampler never walks the queue — with a deep
        // open-loop backlog the old O(queue) walk dominated the run.
        let status = self.master.snapshot();
        let supply_cores: f64 = status
            .workers
            .values()
            .map(|w| w.capacity.cores_f64())
            .sum();
        let held = self.operator.held_jobs();
        let held_count: usize = held.iter().map(|(_, c)| c).sum();
        let waiting_cores: f64 = self
            .master
            .waiting_demand()
            .iter()
            .map(|(cat, declared, n)| {
                declared
                    .or_else(|| self.operator.known_resources_id(*cat))
                    .unwrap_or(self.cfg.worker_request)
                    .cores_f64()
                    * *n as f64
            })
            .sum::<f64>()
            + held
                .iter()
                .map(|(cat, count)| {
                    self.operator
                        .known_resources_id(*cat)
                        .unwrap_or(self.cfg.worker_request)
                        .cores_f64()
                        * *count as f64
                })
                .sum::<f64>();
        let in_use_cores = self.master.in_use_cores();
        let quota_cores = self.cfg.max_workers as f64 * self.cfg.worker_request.cores_f64();
        let demand = in_use_cores + waiting_cores;
        let shortage_cores = (demand.min(quota_cores) - supply_cores).max(0.0);
        // Per-category running counts — the Fig. 10a stage-timeline data.
        // Categories seen before but not running now record an explicit
        // zero so their series drop instead of holding the last value.
        // Counted by interned id; names are resolved only at the series
        // boundary (`record_extra` keys series by name, so id-order
        // iteration does not change any series' contents).
        self.per_cat_counts.clear();
        self.per_cat_counts.resize(self.master.interner().len(), 0);
        for r in status.running.values() {
            self.per_cat_counts[r.cat.index()] += 1;
        }
        let t = now.as_secs_f64();
        for &cat in &self.seen_categories {
            if self.per_cat_counts[cat.index()] == 0 {
                self.label_buf.clear();
                self.label_buf.push_str("running:");
                self.label_buf.push_str(self.master.interner().name(cat));
                self.recorder.record_extra(&self.label_buf, t, 0.0);
            }
        }
        for i in 0..self.per_cat_counts.len() {
            let count = self.per_cat_counts[i];
            if count == 0 {
                continue;
            }
            let cat = CategoryId::from_u32(i as u32);
            self.label_buf.clear();
            self.label_buf.push_str("running:");
            self.label_buf.push_str(self.master.interner().name(cat));
            self.recorder.record_extra(&self.label_buf, t, count as f64);
            self.seen_categories.insert(cat);
        }
        self.recorder.record(Sample {
            time_s: now.as_secs_f64(),
            supply_cores,
            in_use_cores,
            shortage_cores,
            nodes: self.cluster.ready_node_count() as f64,
            workers_connected: self.master.connected_workers() as f64,
            workers_idle: self.master.idle_workers() as f64,
            workers_desired: self.policy.desired() as f64,
            tasks_waiting: (self.master.waiting_count() + held_count) as f64,
            tasks_running: self.master.running_count() as f64,
            egress_mbps: self.master.egress_throughput_mbps(),
            cpu_utilization: self.master.mean_worker_utilization().unwrap_or(0.0),
        });
    }
}

impl SnapshotState for SystemDriver {
    /// Re-partition every RNG stream in the system for a what-if branch.
    /// Each component gets its own decorrelated salt so the streams stay
    /// independent across (and within) branches.
    fn reseed(&mut self, salt: u64) {
        self.cluster.reseed(branch_salt(salt, 1));
        self.master.reseed(branch_salt(salt, 2));
        self.operator.reseed(branch_salt(salt, 3));
        if let Some(a) = self.arrivals.as_mut() {
            a.reseed(branch_salt(salt, 4));
        }
    }
}

impl WhatIf for SystemDriver {
    /// Fork a branch, apply the candidate action at the fork instant, and
    /// roll the branch forward under a frozen policy to the horizon (or
    /// the event budget). The receiver is untouched.
    fn branch(&self, spec: &BranchSpec) -> BranchOutcome {
        let mut branch = self.fork_branch(spec.salt);
        let t0 = branch.queue.now();
        let completed_before = branch.master.completed_count();
        let events_before = branch.queue.delivered();
        branch.apply_action(t0, spec.initial_action);
        let (_, budget_exhausted) = branch.run_loop(t0 + spec.horizon, spec.max_events);
        let t1 = branch.queue.now();
        // Final sample so the cost integral reflects the branch-end state.
        branch.sample(t1);
        let finished = branch.workload_finished_at.is_some();
        let stop = if finished {
            BranchStop::Finished
        } else if budget_exhausted {
            BranchStop::Budget
        } else if branch.queue.is_empty() {
            BranchStop::Quiescent
        } else {
            BranchStop::Horizon
        };
        let held: usize = branch.operator.held_jobs().iter().map(|(_, c)| c).sum();
        let supply = &branch.recorder.supply;
        let cost_core_s = (supply.integral_until(t1.as_secs_f64())
            - supply.integral_until(t0.as_secs_f64()))
        .max(0.0);
        BranchOutcome {
            elapsed_s: t1.since(t0).as_secs_f64(),
            events: branch.queue.delivered() - events_before,
            stop,
            finished,
            completed_delta: branch.master.completed_count() - completed_before,
            tasks_waiting: branch.master.waiting_count() + held,
            tasks_running: branch.master.running_count(),
            live_worker_pods: branch.live_worker_pods(),
            cost_core_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedPolicy, HtaConfig, HtaPolicy};
    use hta_cluster::MachineType;
    use hta_makeflow::{CategoryProfile, Job, JobId, SimProfile};

    fn tiny_workflow(n: u64) -> Workflow {
        let jobs: Vec<Job> = (0..n)
            .map(|i| Job {
                id: JobId(i),
                category: "align".into(),
                command: format!("blast {i}"),
                inputs: vec!["db".into()],
                outputs: vec![format!("out.{i}")],
            })
            .collect();
        let profile = CategoryProfile {
            name: "align".into(),
            declared: Some(Resources::cores(1, 2_000, 2_000)),
            sim: SimProfile {
                wall: Duration::from_secs(60),
                cpu_fraction: 0.9,
                actual: Resources::cores(1, 2_000, 2_000),
                output_mb: 0.6,
                wall_jitter: 0.0,
                heavy_tail: false,
            },
        };
        Workflow::from_jobs(jobs, vec![profile])
            .unwrap()
            .with_source_file("db", 100.0, true)
    }

    fn small_cfg() -> DriverConfig {
        DriverConfig {
            cluster: ClusterConfig {
                machine: MachineType::custom("m4", Resources::cores(4, 16_000, 100_000)),
                min_nodes: 2,
                max_nodes: 6,
                node_provision_mean: Duration::from_secs(150),
                node_provision_sd: Duration::from_secs(2),
                controller_interval: Duration::from_secs(10),
                node_idle_timeout: Duration::from_secs(120),
                serialize_provisioning: true,
                registry_bandwidth_mbps: 50.0,
                image_pull_jitter: 0.0,
                pod_start_delay: Duration::from_secs(1),
                preemption_mean_lifetime: None,
                faults: Default::default(),
                seed: 11,
            },
            master: MasterConfig {
                egress_base_mbps: 200.0,
                egress_overhead_per_flow: 0.0,
                fast_abort_multiplier: None,
                peer_transfers: false,
                peer_bandwidth_mbps: 2_000.0,
                faults: Default::default(),
                net: Default::default(),
                retire_completed: false,
            },
            operator: OperatorConfig {
                warmup: false,
                trust_declared: true,
                learn: true,
                seed: 1,
            },
            worker_request: Resources::cores(3, 12_000, 50_000),
            worker_anti_affinity: false,
            worker_image_mb: 250.0,
            master_in_cluster: true,
            master_request: Resources::new(1000, 2_000, 5_000),
            initial_workers: 2,
            max_workers: 6,
            sample_interval: Duration::from_secs(1),
            default_init_time: Duration::from_secs(157),
            use_measured_init_time: true,
            node_failures: Vec::new(),
            faults: FaultPlan::default(),
            trace_capacity: 0,
            metrics_lag: Duration::ZERO,
            max_sim_time: Duration::from_secs(20_000),
        }
    }

    #[test]
    fn fixed_pool_completes_small_workload() {
        let driver =
            SystemDriver::new(small_cfg(), tiny_workflow(6), Box::new(FixedPolicy::new(2)));
        let result = driver.run();
        assert!(!result.timed_out, "run must complete");
        // 6 one-core jobs on 2×3-core workers: one 60 s generation after
        // the image pull and staging. Makespan well under 300 s.
        assert!(result.makespan_s < 300.0, "makespan {}", result.makespan_s);
        assert!(result.summary.runtime_s > 0.0);
        assert_eq!(result.interrupted_tasks, 0);
    }

    #[test]
    fn hta_scales_up_for_backlog_and_completes() {
        let mut cfg = small_cfg();
        cfg.operator = OperatorConfig {
            warmup: true,
            trust_declared: false,
            learn: true,
            seed: 2,
        };
        cfg.initial_workers = 2;
        let driver = SystemDriver::new(
            cfg,
            tiny_workflow(30),
            Box::new(HtaPolicy::new(HtaConfig::default())),
        );
        let result = driver.run();
        assert!(!result.timed_out);
        // Warm-up probes one job, learns ~1 core, then fans out. The
        // backlog forces extra worker pods beyond the initial 2.
        assert!(
            result.summary.peak_workers > 2.0,
            "peak workers {}",
            result.summary.peak_workers
        );
        assert!(
            result.makespan_s < 2_000.0,
            "makespan {}",
            result.makespan_s
        );
    }

    #[test]
    fn run_produces_consistent_metrics() {
        let driver =
            SystemDriver::new(small_cfg(), tiny_workflow(6), Box::new(FixedPolicy::new(2)));
        let result = driver.run();
        let r = &result.recorder;
        assert!(!r.supply.is_empty());
        assert!(!r.in_use.is_empty());
        // Waste = supply − in-use ≥ 0 everywhere by construction.
        assert!(r.waste.values().iter().all(|v| *v >= 0.0));
        // Utilization bounded.
        assert!(r
            .cpu_utilization
            .values()
            .iter()
            .all(|v| (0.0..=1.0).contains(v)));
        // Summary integrals are finite and non-negative.
        assert!(result.summary.accumulated_waste_core_s >= 0.0);
        assert!(result.summary.accumulated_shortage_core_s >= 0.0);
    }

    #[test]
    fn fault_plan_runs_complete_and_are_deterministic() {
        // The acceptance scenario: node crash + image-pull failures + a
        // high transient-task rate, all from one seeded plan. The retry
        // budget absorbs every transient, so the workload completes with
        // exactly-once accounting, and two same-seed runs are identical.
        let run = || {
            let mut cfg = small_cfg();
            cfg.faults = FaultPlan {
                seed: 7,
                node_crash_times: vec![Duration::from_secs(260)],
                image_pull_fail_rate: 0.2,
                task_transient_rate: 0.3,
                max_task_retries: 6,
                ..FaultPlan::default()
            };
            SystemDriver::new(cfg, tiny_workflow(12), Box::new(FixedPolicy::new(3))).run()
        };
        let a = run();
        assert!(!a.timed_out);
        assert_eq!(a.jobs_failed, 0, "retry budget absorbs transients");
        let done = a
            .task_spans
            .iter()
            .filter(|s| s.completed_s.is_some())
            .count();
        assert_eq!(done, 12, "every job completed exactly once");
        assert!(
            a.summary.faults.transient_failures > 0 || a.summary.faults.image_pull_retries > 0,
            "chaos must actually bite: {:?}",
            a.summary.faults
        );
        let b = run();
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn permanent_failure_degrades_gracefully() {
        // 100 % transient rate with a tiny budget: every task fails
        // permanently, the workflow resolves (nothing hangs) and the
        // failure counters land in the summary.
        let mut cfg = small_cfg();
        cfg.faults = FaultPlan {
            seed: 3,
            task_transient_rate: 1.0,
            max_task_retries: 1,
            ..FaultPlan::default()
        };
        let result = SystemDriver::new(cfg, tiny_workflow(4), Box::new(FixedPolicy::new(2))).run();
        assert!(!result.timed_out, "failed workload must still resolve");
        assert_eq!(result.jobs_failed, 4);
        assert_eq!(result.summary.faults.permanent_failures, 4);
        assert!(result.summary.faults.wasted_core_s > 0.0);
    }

    #[test]
    fn digest_is_identical_across_same_seed_runs() {
        let run = |capture| {
            SystemDriver::new(small_cfg(), tiny_workflow(8), Box::new(FixedPolicy::new(2)))
                .with_digest(DigestConfig {
                    checkpoint_every: 64,
                    capture,
                })
                .run()
        };
        let a = run(None).digest.expect("digest recorded");
        let b = run(None).digest.expect("digest recorded");
        assert!(a.events > 0);
        assert!(!a.checkpoints.is_empty(), "run long enough to checkpoint");
        assert!(a.matches(&b));
        assert_eq!(a.first_divergence(&b), None);
        // A capture window re-runs to the exact same event stream.
        let c = run(Some((0, 16))).digest.expect("digest recorded");
        assert_eq!(c.captured.len(), 16);
        assert!(a.matches(&c), "capturing must not perturb the run");
    }

    fn completed_labels(r: &RunResult) -> Vec<String> {
        let mut v: Vec<String> = r
            .task_spans
            .iter()
            .filter(|s| s.completed_s.is_some())
            .map(|s| s.label.clone())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn control_plane_crash_recovers_identical_completed_set() {
        // The acceptance scenario: kill the master+operator mid-workload,
        // restart after the outage, and the recovered run must terminate
        // with the exact completed-task set of its crash-free twin.
        let crash_free = SystemDriver::new(
            small_cfg(),
            tiny_workflow(12),
            Box::new(FixedPolicy::new(3)),
        )
        .run();
        let crashed = || {
            let mut cfg = small_cfg();
            cfg.faults.control_plane = ControlPlaneFaults {
                crash_times: vec![Duration::from_secs(90)],
                outage: Duration::from_secs(40),
                checkpoint_interval: Duration::from_secs(60),
            };
            SystemDriver::new(cfg, tiny_workflow(12), Box::new(FixedPolicy::new(3))).run()
        };
        let a = crashed();
        assert!(!a.timed_out, "recovered run must complete");
        assert_eq!(a.summary.faults.master_crashes, 1);
        assert_eq!(a.recoveries.len(), 1);
        let rep = a.recoveries[0];
        assert_eq!(rep.outage_s(), 40.0);
        assert!(
            rep.amnesia_window_s() <= 60.0,
            "amnesia bounded by one checkpoint interval, got {}",
            rep.amnesia_window_s()
        );
        assert!(rep.tasks_requeued > 0, "crash must orphan in-flight work");
        assert!(rep.workers_readopted > 0, "survivors must be re-adopted");
        assert!(
            a.summary.faults.checkpoints_taken >= 2,
            "initial + post-recovery"
        );
        assert_eq!(a.jobs_failed, 0);
        assert_eq!(
            completed_labels(&a),
            completed_labels(&crash_free),
            "identical completed-task set"
        );
        // Bitwise-per-seed reproducibility of the crashed run itself.
        let b = crashed();
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.events, b.events);
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.recoveries, b.recoveries);
    }

    #[test]
    fn crash_recovery_digest_is_identical_across_same_seed_runs() {
        let run = || {
            let mut cfg = small_cfg();
            cfg.faults.control_plane = ControlPlaneFaults {
                crash_times: vec![Duration::from_secs(60), Duration::from_secs(160)],
                outage: Duration::from_secs(30),
                checkpoint_interval: Duration::from_secs(45),
            };
            SystemDriver::new(cfg, tiny_workflow(16), Box::new(FixedPolicy::new(3)))
                .with_digest(DigestConfig {
                    checkpoint_every: 64,
                    capture: None,
                })
                .run()
        };
        let a = run();
        let b = run();
        assert!(!a.timed_out);
        let da = a.digest.expect("digest recorded");
        let db = b.digest.expect("digest recorded");
        assert!(
            da.matches(&db),
            "same-seed crash runs must be bitwise identical"
        );
        assert_eq!(da.first_divergence(&db), None);
        assert_eq!(
            a.summary.faults.master_crashes,
            b.summary.faults.master_crashes
        );
    }

    fn traced_driver(spec: &str, seed: u64, pool: usize) -> SystemDriver {
        let source = ArrivalSource::synth(spec, seed).expect("valid trace spec");
        SystemDriver::new_traced(small_cfg(), source, Box::new(FixedPolicy::new(pool)))
    }

    #[test]
    fn traced_run_completes_and_retires_every_record() {
        let result = traced_driver("demo-1k,tasks=400,rate=4", 7, 4).run();
        assert!(!result.timed_out, "traced run must complete");
        let st = result.arrivals.expect("traced run reports arrival stats");
        assert_eq!(st.submitted, 400);
        assert_eq!(st.total_tasks, 400);
        assert!(st.exhausted);
        assert_eq!(result.completed, 400);
        assert_ne!(result.completed_digest, 0);
        // Streaming admission: every record was retired on completion, so
        // memory tracked in-flight tasks and no spans were retained.
        assert!(result.task_spans.is_empty());
        // Open loop: the run outlives the last arrival.
        assert!(result.makespan_s >= st.last_arrival_s.expect("arrivals emitted"));
    }

    #[test]
    fn traced_digest_is_identical_across_same_seed_runs() {
        let run = || {
            traced_driver("demo-1k,tasks=200", 11, 4)
                .with_digest(DigestConfig {
                    checkpoint_every: 64,
                    capture: None,
                })
                .run()
        };
        let a = run().digest.expect("digest recorded");
        let b = run().digest.expect("digest recorded");
        assert!(a.events > 0);
        assert!(
            a.matches(&b),
            "same-seed traced runs must be bitwise identical"
        );
        assert_eq!(a.first_divergence(&b), None);
    }

    #[test]
    fn traced_crash_recovery_completes_identical_task_set() {
        // Crash the control plane while arrivals are still flowing: the
        // trace cursor restores from the checkpoint, WAL replay advances
        // it over already-admitted arrivals, and the outage backlog is
        // admitted at restart. The completed-id digest must match the
        // crash-free twin (records are retired, so sets are compared by
        // digest, not spans).
        let spec = "demo-1k,tasks=300,rate=3";
        let crash_free = traced_driver(spec, 5, 4).run();
        assert!(!crash_free.timed_out);
        assert_eq!(crash_free.completed, 300);
        let crashed = || {
            let mut cfg = small_cfg();
            cfg.faults.control_plane = ControlPlaneFaults {
                crash_times: vec![Duration::from_secs(60)],
                outage: Duration::from_secs(30),
                checkpoint_interval: Duration::from_secs(45),
            };
            let source = ArrivalSource::synth(spec, 5).expect("valid trace spec");
            SystemDriver::new_traced(cfg, source, Box::new(FixedPolicy::new(4))).run()
        };
        let a = crashed();
        assert!(!a.timed_out, "recovered traced run must complete");
        assert_eq!(a.summary.faults.master_crashes, 1);
        assert_eq!(a.completed, 300);
        assert_eq!(
            a.completed_digest, crash_free.completed_digest,
            "identical completed-task set across crash and crash-free runs"
        );
        let st = a.arrivals.expect("stats survive recovery");
        assert_eq!(st.submitted, 300);
        assert!(st.exhausted);
        // Bitwise-per-seed reproducibility of the crashed traced run.
        let b = crashed();
        assert_eq!(a.events, b.events);
        assert_eq!(a.completed_digest, b.completed_digest);
        assert_eq!(a.makespan_s, b.makespan_s);
    }

    #[test]
    fn inert_control_plane_arm_leaves_runs_untouched() {
        // A FaultPlan with an *inactive* control-plane arm must not perturb
        // the event stream at all (no checkpoint events, incarnation 0).
        let plain =
            SystemDriver::new(small_cfg(), tiny_workflow(8), Box::new(FixedPolicy::new(2))).run();
        let mut cfg = small_cfg();
        cfg.faults.control_plane = ControlPlaneFaults::default();
        assert!(!cfg.faults.control_plane.is_active());
        let armed = SystemDriver::new(cfg, tiny_workflow(8), Box::new(FixedPolicy::new(2))).run();
        assert_eq!(plain.events, armed.events);
        assert_eq!(plain.summary, armed.summary);
        assert!(armed.recoveries.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            SystemDriver::new(
                small_cfg(),
                tiny_workflow(10),
                Box::new(FixedPolicy::new(3)),
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.events, b.events);
        assert_eq!(
            a.summary.accumulated_waste_core_s,
            b.summary.accumulated_waste_core_s
        );
    }
}
