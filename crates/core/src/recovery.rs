//! Control-plane crash-recovery types.
//!
//! The driver checkpoints the whole control plane — master, operator,
//! active scaling policy, init-time tracker — every
//! [`checkpoint_interval`](crate::fault::ControlPlaneFaults::checkpoint_interval)
//! into a [`Checkpoint<ControlPlaneState>`](hta_des::Checkpoint), and
//! appends every control-plane *decision* made since the last checkpoint
//! to a [`Wal<WalRecord>`](hta_des::Wal). Recovery after a crash is:
//! restore the checkpoint, reset its data-plane beliefs
//! ([`Master::recover_reset_data_plane`](hta_workqueue::master::Master)),
//! replay the WAL in order, reconcile warm-up probes, then re-adopt the
//! workers that survived the outage.
//!
//! WAL records carry **decided data, not decision inputs** (see
//! [`hta_des::wal`]): a `Submit` embeds the full task spec with its
//! already-sampled wall time, so replay never re-draws randomness.
//! Statistics observations are deliberately *not* logged — recovered
//! estimates revert to their checkpoint values, which is the bounded
//! amnesia the chaos-recovery harness asserts on.

use hta_des::{branch_salt, SimTime, SnapshotState};
use hta_makeflow::JobId;
use hta_resources::Resources;
use hta_workqueue::master::Master;
use hta_workqueue::task::TaskSpec;
use hta_workqueue::TaskId;

use crate::init_time::InitTimeTracker;
use crate::operator::Operator;
use crate::policy::ScalingPolicy;

/// One durably logged control-plane decision.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A job was translated and submitted to the master. The spec embeds
    /// every decided value (task id, sampled wall time, declared
    /// resources), so replay reconstructs the submission bit-for-bit.
    Submit {
        /// The workflow job.
        job: JobId,
        /// The exact spec handed to the master.
        spec: TaskSpec,
    },
    /// A category's resources were learned from its first measurement.
    Learn {
        /// The interned category (ids are stable: every workflow category
        /// is interned at operator construction, before checkpoint #0).
        cat: hta_des::CategoryId,
        /// The committed requirement.
        resources: Resources,
    },
    /// A task's completion was acknowledged to the operator.
    Complete {
        /// The completed task.
        task: TaskId,
        /// The acknowledgement instant (preserved through replay).
        at: SimTime,
    },
    /// A task's permanent failure was acknowledged to the operator.
    Fail {
        /// The failed task.
        task: TaskId,
        /// The acknowledgement instant.
        at: SimTime,
    },
    /// An open-loop trace arrival was admitted. The spec embeds every
    /// decided value exactly as drawn from the generator; replay also
    /// advances the checkpoint-restored trace cursor one event, so the
    /// generator never re-draws an already-admitted arrival's randomness.
    TraceSubmit {
        /// The exact spec handed to the master.
        spec: TaskSpec,
    },
}

/// Everything the driver checkpoints as "the control plane".
///
/// The cluster, the event queue, and the metrics recorder are *not* part
/// of this state: nodes and pods keep running through an outage (they are
/// the data plane), and the recorder represents the observer, which also
/// survives.
#[derive(Clone)]
pub struct ControlPlaneState {
    /// The Work Queue master.
    pub master: Master,
    /// The Makeflow operator.
    pub operator: Operator,
    /// The active scaling policy (cloned behind the trait).
    pub policy: Box<dyn ScalingPolicy>,
    /// The init-time tracker feeding the estimator.
    pub tracker: InitTimeTracker,
    /// The open-loop trace cursor (None for workflow-driven runs): the
    /// generator's RNG streams, lookahead buffer and counters, captured
    /// so WAL replay advances the exact arrival stream the crashed
    /// control plane was consuming.
    pub arrivals: Option<hta_trace::ArrivalSource>,
}

impl SnapshotState for ControlPlaneState {
    /// Re-partition the RNG streams of the stateful members. Stream
    /// indices mirror the driver's own `SnapshotState` impl so a salted
    /// control-plane fork decorrelates the same way a driver fork does.
    fn reseed(&mut self, salt: u64) {
        self.master.reseed(branch_salt(salt, 2));
        self.operator.reseed(branch_salt(salt, 3));
        if let Some(a) = self.arrivals.as_mut() {
            a.reseed(branch_salt(salt, 4));
        }
    }
}

/// What one crash-recovery cycle did (appended to
/// [`RunResult::recoveries`](crate::driver::RunResult)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// When the control plane crashed.
    pub crashed_at: SimTime,
    /// When it came back and finished reconciling.
    pub recovered_at: SimTime,
    /// The checkpoint it restored from.
    pub checkpoint_at: SimTime,
    /// WAL records replayed on top of the checkpoint.
    pub wal_replayed: usize,
    /// In-flight tasks re-queued (exactly once) by the data-plane reset.
    pub tasks_requeued: usize,
    /// Surviving workers re-adopted via the cluster watch stream.
    pub workers_readopted: usize,
}

impl RecoveryReport {
    /// Outage length in seconds.
    pub fn outage_s(&self) -> f64 {
        self.recovered_at.since(self.crashed_at).as_secs_f64()
    }

    /// Slack between the crash and its checkpoint — by construction at
    /// most one checkpoint interval (the bounded-amnesia window).
    pub fn amnesia_window_s(&self) -> f64 {
        self.crashed_at.since(self.checkpoint_at).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_derives_outage_and_amnesia_window() {
        let r = RecoveryReport {
            crashed_at: SimTime::from_secs(500),
            recovered_at: SimTime::from_secs(560),
            checkpoint_at: SimTime::from_secs(480),
            wal_replayed: 12,
            tasks_requeued: 4,
            workers_readopted: 3,
        };
        assert_eq!(r.outage_s(), 60.0);
        assert_eq!(r.amnesia_window_s(), 20.0);
    }
}
