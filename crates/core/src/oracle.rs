//! A clairvoyant reference policy.
//!
//! [`OraclePolicy`] is handed the workload's *true* per-category resource
//! requirements up front (no probing, no learning lag) and reacts
//! instantly to the queue: the desired pool is exactly the number of
//! worker pods that packs every waiting and running task. It is the
//! "number of worker-pods required in an ideal scenario" series of
//! Fig. 2 — an upper bound no real autoscaler reaches, because real
//! scaling pays the initialization cycle the oracle ignores.

use std::collections::BTreeMap;

use hta_des::Duration;
use hta_resources::Resources;

use crate::policy::{PolicyContext, ScaleAction, ScalingPolicy};

/// The clairvoyant policy.
#[derive(Debug, Clone)]
pub struct OraclePolicy {
    /// True per-category requirements (from the workload definition).
    requirements: BTreeMap<String, Resources>,
    evaluate_every: Duration,
    last_desired: usize,
}

impl OraclePolicy {
    /// Build from the true category → requirement map.
    pub fn new(requirements: BTreeMap<String, Resources>) -> Self {
        OraclePolicy {
            requirements,
            evaluate_every: Duration::from_secs(5),
            last_desired: 0,
        }
    }

    /// Convenience: extract the truth from a workflow's category profiles
    /// (the `actual` footprint, which the resource monitor would measure).
    pub fn from_workflow(workflow: &hta_makeflow::Workflow) -> Self {
        let map = workflow
            .categories
            .iter()
            .map(|(name, prof)| (name.clone(), prof.sim.actual))
            .collect();
        Self::new(map)
    }

    fn requirement(&self, category: &str, fallback: Resources) -> Resources {
        self.requirements.get(category).copied().unwrap_or(fallback)
    }

    /// Pack a list of requirements into worker-unit bins (first-fit).
    fn bins_needed(tasks: &[Resources], unit: Resources) -> usize {
        let mut bins: Vec<Resources> = Vec::new();
        for t in tasks {
            if !t.fits_in(&unit) {
                continue;
            }
            match bins.iter_mut().find(|b| t.fits_in(b)) {
                Some(b) => *b = b.saturating_sub(t),
                None => bins.push(unit.saturating_sub(t)),
            }
        }
        bins.len()
    }
}

impl ScalingPolicy for OraclePolicy {
    fn name(&self) -> String {
        "Oracle".into()
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> (ScaleAction, Duration) {
        if ctx.workload_done {
            self.last_desired = 0;
            return if ctx.live_worker_pods > 0 {
                (
                    ScaleAction::DrainWorkers(ctx.live_worker_pods),
                    self.evaluate_every,
                )
            } else {
                (ScaleAction::None, self.evaluate_every)
            };
        }
        // The whole outstanding task set, with true requirements. The
        // oracle keeps its truth keyed by name (it comes from the workload
        // definition, before any interning) and resolves ids on the fly.
        let mut demands: Vec<Resources> = Vec::new();
        for w in &ctx.queue.waiting {
            demands.push(self.requirement(ctx.interner.name(w.cat), ctx.worker_unit));
        }
        for r in ctx.queue.running.values() {
            demands.push(self.requirement(ctx.interner.name(r.cat), r.allocation));
        }
        for (cat, count) in ctx.held_jobs {
            let req = self.requirement(ctx.interner.name(*cat), ctx.worker_unit);
            demands.extend(std::iter::repeat_n(req, *count));
        }
        let desired = Self::bins_needed(&demands, ctx.worker_unit).min(ctx.max_workers);
        self.last_desired = desired;
        let live = ctx.live_worker_pods;
        let action = if desired > live {
            ScaleAction::CreateWorkers(desired - live)
        } else if desired < live {
            ScaleAction::DrainWorkers(live - desired)
        } else {
            ScaleAction::None
        };
        (action, self.evaluate_every)
    }

    fn desired(&self) -> usize {
        self.last_desired
    }

    fn clone_box(&self) -> Box<dyn ScalingPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category_stats::CategoryStats;
    use hta_des::{CategoryId, Interner, SimTime};
    use hta_workqueue::master::{QueueStatus, WaitingSnapshot};
    use hta_workqueue::TaskId;

    const CAT0: CategoryId = CategoryId::from_u32(0);

    fn interner(names: &[&str]) -> Interner {
        let mut it = Interner::new();
        for n in names {
            it.intern(n);
        }
        it
    }

    fn unit() -> Resources {
        Resources::cores(3, 12_000, 50_000)
    }

    fn ctx<'a>(
        queue: &'a QueueStatus,
        stats: &'a CategoryStats,
        it: &'a Interner,
        held: &'a [(CategoryId, usize)],
        live: usize,
    ) -> PolicyContext<'a> {
        PolicyContext {
            now: SimTime::from_secs(10),
            queue,
            interner: it,
            held_jobs: held,
            stats,
            init_time: Duration::from_secs(157),
            worker_unit: unit(),
            live_worker_pods: live,
            pending_worker_pods: 0,
            utilization: None,
            max_workers: 20,
            workload_done: false,
            telemetry_age: Duration::ZERO,
        }
    }

    fn waiting_queue(n: u64) -> QueueStatus {
        QueueStatus {
            waiting: (0..n)
                .map(|i| WaitingSnapshot {
                    id: TaskId(i),
                    cat: CAT0,
                    declared: None, // the oracle does not need declarations
                })
                .collect(),
            ..QueueStatus::default()
        }
    }

    #[test]
    fn oracle_packs_true_requirements() {
        let mut req = BTreeMap::new();
        req.insert("align".to_string(), Resources::cores(1, 2_000, 2_000));
        let mut p = OraclePolicy::new(req);
        let it = interner(&["align"]);
        let q = waiting_queue(9);
        let stats = CategoryStats::new();
        let (action, _) = p.decide(&ctx(&q, &stats, &it, &[], 0));
        assert_eq!(action, ScaleAction::CreateWorkers(3), "9 × 1c → 3 workers");
        assert_eq!(p.desired(), 3);
    }

    #[test]
    fn oracle_drains_surplus_immediately() {
        let mut p = OraclePolicy::new(BTreeMap::new());
        let q = QueueStatus::default();
        let it = Interner::new();
        let stats = CategoryStats::new();
        let (action, _) = p.decide(&ctx(&q, &stats, &it, &[], 5));
        assert_eq!(action, ScaleAction::DrainWorkers(5));
    }

    #[test]
    fn oracle_counts_held_jobs_with_truth() {
        let mut req = BTreeMap::new();
        req.insert("dd".to_string(), Resources::cores(1, 1_000, 15_000));
        let mut p = OraclePolicy::new(req);
        let it = interner(&["dd"]);
        let q = QueueStatus::default();
        let stats = CategoryStats::new();
        let held = vec![(CAT0, 6)];
        // 15 GB disk → 3 per 50 GB worker → 2 workers.
        let (action, _) = p.decide(&ctx(&q, &stats, &it, &held, 0));
        assert_eq!(action, ScaleAction::CreateWorkers(2));
    }

    #[test]
    fn oracle_respects_quota_and_cleanup() {
        let mut req = BTreeMap::new();
        req.insert("x".to_string(), unit());
        let mut p = OraclePolicy::new(req);
        let it = interner(&["x"]);
        let q = waiting_queue(100);
        let stats = CategoryStats::new();
        let (action, _) = p.decide(&ctx(&q, &stats, &it, &[], 0));
        assert_eq!(action, ScaleAction::CreateWorkers(20), "quota-clamped");
        let mut done = ctx(&q, &stats, &it, &[], 7);
        done.workload_done = true;
        let (action, _) = p.decide(&done);
        assert_eq!(action, ScaleAction::DrainWorkers(7));
        assert_eq!(p.desired(), 0);
    }
}
