//! # hta-core — the High-Throughput Autoscaler
//!
//! The paper's contribution: a *well-informed feedback autoscaler* that
//! resizes the worker-pod pool of an HTC stack by combining three inputs
//! (Fig. 7):
//!
//! 1. the **job queue** state reported by the job scheduler,
//! 2. the **runtime statistics of completed jobs** (resource consumption
//!    and execution time, grouped by category) reported by the workflow
//!    manager's resource monitor, and
//! 3. the **resource initialization time** of the cluster manager,
//!    measured continuously from the informer's pod-lifecycle events.
//!
//! Modules:
//!
//! * [`category_stats`] — per-category online estimates (feedback input),
//! * [`init_time`] — the informer consumer measuring initialization time,
//! * [`estimator`] — Algorithm 1: forward-simulate one initialization
//!   cycle and return the scale delta + next-action time,
//! * [`policy`] — the [`policy::ScalingPolicy`] trait with the HTA, HPA,
//!   fixed-pool and oracle implementations,
//! * [`operator`] — the Makeflow-Kubernetes operator: job submission,
//!   warm-up probing (one job per category), category learning,
//! * [`driver`] — the end-to-end system driver wiring the cluster
//!   simulator, Work Queue master, workflow and policy into one
//!   deterministic event loop, with the metrics recorder attached.
//!
//! # Example: Algorithm 1 directly
//!
//! ```
//! use hta_core::{estimate, EstimatorInput, WaitingTask};
//! use hta_des::Duration;
//! use hta_resources::Resources;
//!
//! // Nine queued 1-core jobs, no workers yet, node-sized worker pods.
//! let decision = estimate(&EstimatorInput {
//!     rsrc_init_time: Duration::from_secs(157),
//!     default_cycle: Duration::from_secs(30),
//!     running: vec![],
//!     waiting: vec![
//!         WaitingTask {
//!             resources: Resources::cores(1, 3_000, 5_000),
//!             exec: Duration::from_secs(300),
//!         };
//!         9
//!     ],
//!     active_workers: vec![],
//!     worker_unit: Resources::cores(3, 12_000, 50_000),
//!     overflow: vec![],
//! });
//! assert_eq!(decision.delta, 3, "9 one-core jobs pack into 3 workers");
//! assert_eq!(decision.next_action, Duration::from_secs(157));
//! ```
//!
//! # Example: a full run
//!
//! ```
//! use hta_core::driver::{DriverConfig, SystemDriver};
//! use hta_core::policy::{HtaConfig, HtaPolicy};
//! use hta_makeflow::parse;
//!
//! let wf = parse("out: in\n\twork\n").unwrap();
//! let result = SystemDriver::new(
//!     DriverConfig::default(),
//!     wf,
//!     Box::new(HtaPolicy::new(HtaConfig::default())),
//! )
//! .run();
//! assert!(!result.timed_out);
//! assert!(result.makespan_s > 0.0);
//! ```

pub mod category_stats;
pub mod driver;
pub mod estimator;
pub mod fault;
pub mod init_time;
pub mod operator;
pub mod oracle;
pub mod policy;
pub mod recovery;
pub mod target_tracking;
pub mod whatif;

pub use category_stats::{CategoryEstimate, CategoryStats};
pub use driver::{DriverConfig, SystemDriver};
pub use estimator::{
    estimate, estimate_per_worker, forecast_rsh_cores, EstimatorInput, RunningTask, ScaleDecision,
    WaitingTask,
};
pub use fault::{ControlPlaneFaults, FaultPlan};
pub use init_time::InitTimeTracker;
pub use operator::{Operator, OperatorConfig};
pub use oracle::OraclePolicy;
pub use policy::{
    FixedPolicy, HoldPolicy, HpaPolicy, HtaPolicy, PolicyContext, ScaleAction, ScalingPolicy,
};
pub use recovery::{ControlPlaneState, RecoveryReport, WalRecord};
pub use target_tracking::{TargetTrackingConfig, TargetTrackingPolicy};
pub use whatif::{BranchOutcome, BranchSpec, BranchStop, WhatIf};
