//! Resource-initialization-time tracking (the infrastructure input).
//!
//! §V-B: HTA uses the informer's pod-lifecycle events to measure how long
//! a worker pod takes from the creation request to `Running`, but **only**
//! for pods that traversed all three creation states — *No Available
//! Node* → *No Container Image* → *Running* — because only those measure a
//! full cycle (node reservation + image pull + start). Pods that landed on
//! a warm node measure nothing.
//!
//! The tracker keeps the *latest* full measurement (the paper's choice:
//! "we will use the time interval … as the latest resource initialization
//! time") plus a count and mean for diagnostics, and falls back to a
//! configurable default before the first measurement.
//!
//! Under fault injection a pod can take an extreme full cycle — e.g. an
//! image pull failing repeatedly into `ImagePullBackOff` for minutes —
//! which would poison the estimator's init-time input for the rest of
//! the run. Once five measurements exist, the tracker rejects new ones
//! more than 3σ from the running mean (with a small floor on the band so
//! a near-zero σ doesn't reject everything); rejections are counted but
//! neither stored nor reported as `latest`.

use std::collections::BTreeMap;

use hta_cluster::{PodId, WatchEvent, WatchKind};
use hta_des::{Duration, SimTime};

#[derive(Debug, Clone, Copy, Default)]
struct PodTrack {
    created_at: Option<SimTime>,
    waited_for_node: bool,
    pulled_image: bool,
}

/// Informer consumer measuring the latest resource-initialization time.
#[derive(Debug, Clone)]
pub struct InitTimeTracker {
    default: Duration,
    latest: Option<Duration>,
    /// Ordered by pod id so the tracker stays hash-state-free (it is
    /// keyed-lookup only today, but it sits on the determinism-critical
    /// informer path).
    tracks: BTreeMap<PodId, PodTrack>,
    measurements: Vec<Duration>,
    rejected: usize,
}

impl InitTimeTracker {
    /// A tracker that reports `default` until the first full measurement.
    pub fn new(default: Duration) -> Self {
        InitTimeTracker {
            default,
            latest: None,
            tracks: BTreeMap::new(),
            measurements: Vec::new(),
            rejected: 0,
        }
    }

    /// Feed one informer event.
    pub fn observe(&mut self, ev: &WatchEvent) {
        if ev.is_node_event() {
            return;
        }
        match ev.kind {
            WatchKind::PodCreated => {
                self.tracks.insert(
                    ev.pod,
                    PodTrack {
                        created_at: Some(ev.at),
                        ..PodTrack::default()
                    },
                );
            }
            WatchKind::PodUnschedulable => {
                if let Some(t) = self.tracks.get_mut(&ev.pod) {
                    t.waited_for_node = true;
                }
            }
            WatchKind::PodImagePulled(_) => {
                if let Some(t) = self.tracks.get_mut(&ev.pod) {
                    t.pulled_image = true;
                }
            }
            WatchKind::PodRunning(_) => {
                if let Some(t) = self.tracks.remove(&ev.pod) {
                    if t.waited_for_node && t.pulled_image {
                        if let Some(created) = t.created_at {
                            let lat = ev.at.since(created);
                            if self.is_outlier(lat) {
                                self.rejected += 1;
                            } else {
                                self.latest = Some(lat);
                                self.measurements.push(lat);
                            }
                        }
                    }
                }
            }
            WatchKind::PodSucceeded | WatchKind::PodFailed => {
                self.tracks.remove(&ev.pod);
            }
            _ => {}
        }
    }

    /// Feed a batch of events.
    pub fn observe_all<'a>(&mut self, events: impl IntoIterator<Item = &'a WatchEvent>) {
        for ev in events {
            self.observe(ev);
        }
    }

    /// Outlier test: with five or more accepted measurements, a new one
    /// further than `max(3σ, 10 % of mean, 1 s)` from the running mean is
    /// rejected. The floor keeps a degenerate σ (identical samples on a
    /// quiet cluster) from rejecting ordinary jitter.
    fn is_outlier(&self, lat: Duration) -> bool {
        if self.measurements.len() < 5 {
            return false;
        }
        let mean = self.mean().expect("non-empty").as_secs_f64();
        let sd = self.std_dev_secs().unwrap_or(0.0);
        let band = (3.0 * sd).max(mean * 0.1).max(1.0);
        (lat.as_secs_f64() - mean).abs() > band
    }

    /// The latest full-cycle measurement, or the default.
    pub fn latest(&self) -> Duration {
        self.latest.unwrap_or(self.default)
    }

    /// Full-cycle measurements rejected as outliers (>3σ from the mean).
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Number of full-cycle measurements taken.
    pub fn count(&self) -> usize {
        self.measurements.len()
    }

    /// Mean of all measurements (diagnostics; `None` before the first).
    pub fn mean(&self) -> Option<Duration> {
        if self.measurements.is_empty() {
            return None;
        }
        let total: u128 = self
            .measurements
            .iter()
            .map(|d| d.as_millis() as u128)
            .sum();
        Some(Duration::from_millis(
            (total / self.measurements.len() as u128) as u64,
        ))
    }

    /// Sample standard deviation in seconds (diagnostics; the Fig. 6
    /// benchmark reports mean 157.4 s, σ 4.2 s on GKE).
    pub fn std_dev_secs(&self) -> Option<f64> {
        let n = self.measurements.len();
        if n < 2 {
            return None;
        }
        let mean = self.mean()?.as_secs_f64();
        let var = self
            .measurements
            .iter()
            .map(|d| (d.as_secs_f64() - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        Some(var.sqrt())
    }

    /// All measurements (for the Fig. 6 reproduction binary).
    pub fn measurements(&self) -> &[Duration] {
        &self.measurements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hta_cluster::NodeId;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn full_cycle(tracker: &mut InitTimeTracker, pod: u64, start: u64, latency: u64) {
        let p = PodId(pod);
        let n = NodeId(0);
        tracker.observe(&WatchEvent::pod(t(start), p, WatchKind::PodCreated));
        tracker.observe(&WatchEvent::pod(t(start), p, WatchKind::PodUnschedulable));
        tracker.observe(&WatchEvent::pod(
            t(start + latency - 15),
            p,
            WatchKind::PodScheduled(n),
        ));
        tracker.observe(&WatchEvent::pod(
            t(start + latency - 2),
            p,
            WatchKind::PodImagePulled(n),
        ));
        tracker.observe(&WatchEvent::pod(
            t(start + latency),
            p,
            WatchKind::PodRunning(n),
        ));
    }

    #[test]
    fn default_until_first_measurement() {
        let tracker = InitTimeTracker::new(Duration::from_secs(157));
        assert_eq!(tracker.latest(), Duration::from_secs(157));
        assert_eq!(tracker.count(), 0);
        assert_eq!(tracker.mean(), None);
    }

    #[test]
    fn full_cycle_is_measured() {
        let mut tracker = InitTimeTracker::new(Duration::from_secs(100));
        full_cycle(&mut tracker, 1, 10, 160);
        assert_eq!(tracker.latest(), Duration::from_secs(160));
        assert_eq!(tracker.count(), 1);
    }

    #[test]
    fn warm_pod_does_not_measure() {
        let mut tracker = InitTimeTracker::new(Duration::from_secs(100));
        let p = PodId(2);
        let n = NodeId(0);
        // Scheduled immediately (no Unschedulable), image cached (no
        // ImagePulled? — cached pods do emit ImagePulled in our cluster;
        // model the truly-warm case: no unschedulable event).
        tracker.observe(&WatchEvent::pod(t(0), p, WatchKind::PodCreated));
        tracker.observe(&WatchEvent::pod(t(0), p, WatchKind::PodScheduled(n)));
        tracker.observe(&WatchEvent::pod(t(0), p, WatchKind::PodImagePulled(n)));
        tracker.observe(&WatchEvent::pod(t(2), p, WatchKind::PodRunning(n)));
        assert_eq!(tracker.count(), 0);
        assert_eq!(tracker.latest(), Duration::from_secs(100), "still default");
    }

    #[test]
    fn latest_tracks_most_recent() {
        let mut tracker = InitTimeTracker::new(Duration::from_secs(100));
        full_cycle(&mut tracker, 1, 0, 150);
        full_cycle(&mut tracker, 2, 1000, 164);
        assert_eq!(tracker.latest(), Duration::from_secs(164));
        assert_eq!(tracker.count(), 2);
        assert_eq!(tracker.mean(), Some(Duration::from_secs(157)));
        let sd = tracker.std_dev_secs().unwrap();
        assert!((sd - 9.899).abs() < 0.01, "sd={sd}");
    }

    #[test]
    fn outliers_are_rejected_once_baseline_exists() {
        let mut tracker = InitTimeTracker::new(Duration::from_secs(100));
        // Five ordinary cycles around 150–158 s build the baseline.
        for (i, lat) in [150, 152, 154, 156, 158].iter().enumerate() {
            full_cycle(&mut tracker, i as u64, i as u64 * 1_000, *lat);
        }
        assert_eq!(tracker.count(), 5);
        // A pull-backoff victim takes 600 s: rejected, latest untouched.
        full_cycle(&mut tracker, 10, 10_000, 600);
        assert_eq!(tracker.count(), 5);
        assert_eq!(tracker.rejected(), 1);
        assert_eq!(tracker.latest(), Duration::from_secs(158));
        // An ordinary cycle afterwards is accepted again.
        full_cycle(&mut tracker, 11, 11_000, 153);
        assert_eq!(tracker.count(), 6);
        assert_eq!(tracker.latest(), Duration::from_secs(153));
    }

    #[test]
    fn no_rejection_before_five_measurements() {
        let mut tracker = InitTimeTracker::new(Duration::from_secs(100));
        full_cycle(&mut tracker, 1, 0, 150);
        full_cycle(&mut tracker, 2, 1_000, 152);
        // Wildly different but only the 3rd sample: accepted (no baseline).
        full_cycle(&mut tracker, 3, 2_000, 600);
        assert_eq!(tracker.count(), 3);
        assert_eq!(tracker.rejected(), 0);
    }

    #[test]
    fn killed_pending_pod_is_forgotten() {
        let mut tracker = InitTimeTracker::new(Duration::from_secs(100));
        let p = PodId(5);
        tracker.observe(&WatchEvent::pod(t(0), p, WatchKind::PodCreated));
        tracker.observe(&WatchEvent::pod(t(0), p, WatchKind::PodUnschedulable));
        tracker.observe(&WatchEvent::pod(t(5), p, WatchKind::PodFailed));
        // A later Running for the same id (id reuse never happens, but be
        // robust) measures nothing.
        tracker.observe(&WatchEvent::pod(
            t(200),
            p,
            WatchKind::PodRunning(NodeId(0)),
        ));
        assert_eq!(tracker.count(), 0);
    }

    #[test]
    fn node_events_are_ignored() {
        let mut tracker = InitTimeTracker::new(Duration::from_secs(100));
        tracker.observe(&WatchEvent::node(t(0), WatchKind::NodeReady(NodeId(1))));
        tracker.observe(&WatchEvent::node(t(0), WatchKind::NodeRemoved(NodeId(1))));
        assert_eq!(tracker.count(), 0);
    }
}
