//! Algorithm 1 — the resource-estimation function.
//!
//! Given the latest resource-initialization time, the running and waiting
//! task sets, and the active worker pool, HTA forward-simulates one
//! initialization cycle (eq. 2): tasks predicted to finish free their
//! resources, waiting tasks are dispatched into freed capacity, and at the
//! end of the cycle the sign of the remaining imbalance decides the
//! action:
//!
//! * waiting queue empty → **no change**, re-evaluate after the default
//!   cycle;
//! * spare capacity left → **scale down** by the number of whole idle
//!   workers, re-evaluate when the longest-running task should finish;
//! * otherwise → **scale up** by the number of workers the still-waiting
//!   tasks need, re-evaluate after one initialization cycle (the new
//!   workers' arrival time).
//!
//! The simulation is event-driven over task completion times rather than
//! the paper's 1-second loop — identical result, fewer iterations.

use hta_des::Duration;
use hta_resources::Resources;

/// A task currently held by a worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningTask {
    /// Predicted time until completion (category mean minus elapsed,
    /// floored at zero; staging tasks use the full category mean).
    pub remaining: Duration,
    /// Resources allocated on its worker.
    pub allocation: Resources,
}

/// A task in the waiting queue (including operator-held jobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitingTask {
    /// Planned resource requirement (declared, learned, or — when truly
    /// unknown — one whole worker unit).
    pub resources: Resources,
    /// Expected execution time (category mean or the configured default).
    pub exec: Duration,
}

/// Everything Algorithm 1 reads.
#[derive(Debug, Clone)]
pub struct EstimatorInput {
    /// Latest measured resource-initialization time (`rsrcInitTime`).
    pub rsrc_init_time: Duration,
    /// Re-evaluation interval when there is nothing to do.
    pub default_cycle: Duration,
    /// Tasks on workers.
    pub running: Vec<RunningTask>,
    /// Tasks awaiting dispatch, FIFO.
    pub waiting: Vec<WaitingTask>,
    /// Capacities of active (non-draining) workers.
    pub active_workers: Vec<Resources>,
    /// Capacity of one new worker pod (node-sized, §IV-A).
    pub worker_unit: Resources,
    /// Waiting tasks beyond the caller's simulation cap, grouped by
    /// planned resource requirement as `(resources, count)`. The forward
    /// simulation never dispatches them — they stand behind the visible
    /// FIFO prefix — but they are still real demand: any non-empty
    /// overflow suppresses the end-of-cycle idle drain, and scale-up adds
    /// `ceil(count / tasks-per-worker)` workers per group on top of the
    /// packed leftover (clamped to the pool quota by the policy). Empty
    /// whenever the whole queue fit under the cap, which keeps every
    /// closed workflow workload bit-identical.
    pub overflow: Vec<(Resources, usize)>,
}

/// Algorithm 1's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleDecision {
    /// Worker-pod delta: positive = create, negative = drain.
    pub delta: i64,
    /// When to run the estimator again (`timeToNextAction`).
    pub next_action: Duration,
}

/// Workers needed to hold the overflow groups, sized arithmetically
/// (`ceil(count / tasks-per-worker)` per group — a lower bound that
/// ignores cross-group packing, which is fine: overflow only exists when
/// the backlog already saturates the quota). Zero-sized tasks need no
/// capacity and oversized tasks are unsatisfiable; both contribute
/// nothing, mirroring the first-fit packing loop.
fn overflow_workers(overflow: &[(Resources, usize)], unit: &Resources) -> i64 {
    let mut total: i64 = 0;
    for (r, n) in overflow {
        if *n == 0 || !r.fits_in(unit) {
            continue;
        }
        let per = unit.divide_by(r);
        if per == 0 || per == i64::MAX {
            continue;
        }
        total = total.saturating_add((*n as i64 + per - 1) / per);
    }
    total
}

/// Run Algorithm 1.
pub fn estimate(input: &EstimatorInput) -> ScaleDecision {
    let window = input.rsrc_init_time;
    let queue_empty_now = input.waiting.is_empty();
    // Aggregate capacity and currently available slice of it.
    let capacity: Resources = input.active_workers.iter().copied().sum();
    let in_use: Resources = input.running.iter().map(|t| t.allocation).sum();
    let mut available = capacity.saturating_sub(&in_use);

    // Completion-time heap (simple sorted vec; sizes are small).
    // Entries: (completion_time, allocation).
    let mut completions: Vec<(Duration, Resources)> = input
        .running
        .iter()
        .map(|t| (t.remaining, t.allocation))
        .collect();
    completions.sort_by_key(|(d, _)| *d);

    let mut waiting: Vec<WaitingTask> = input.waiting.clone();
    let mut max_running_remaining = completions
        .iter()
        .map(|(d, _)| *d)
        .max()
        .unwrap_or(Duration::ZERO);

    // Dispatch as much of the waiting queue as fits into `available`,
    // inserting dispatched tasks' completions back into the horizon.
    // Returns true when anything was dispatched.
    fn dispatch(
        now: Duration,
        available: &mut Resources,
        waiting: &mut Vec<WaitingTask>,
        completions: &mut Vec<(Duration, Resources)>,
        max_rem: &mut Duration,
    ) -> bool {
        let mut any = false;
        let mut i = 0;
        while i < waiting.len() {
            if available.is_zero() {
                break;
            }
            let t = waiting[i];
            if t.resources.fits_in(available) {
                *available = available.saturating_sub(&t.resources);
                let done_at = now + t.exec;
                let pos = completions.partition_point(|(d, _)| *d <= done_at);
                completions.insert(pos, (done_at, t.resources));
                *max_rem = (*max_rem).max(done_at);
                waiting.remove(i);
                any = true;
            } else {
                i += 1;
            }
        }
        any
    }

    // t = 0 dispatch (capacity may already be free).
    dispatch(
        Duration::ZERO,
        &mut available,
        &mut waiting,
        &mut completions,
        &mut max_running_remaining,
    );

    // Walk completion events inside the window.
    let mut idx = 0;
    while idx < completions.len() {
        let (at, alloc) = completions[idx];
        idx += 1;
        if at > window {
            break;
        }
        available += alloc;
        available = available.min(&capacity);
        dispatch(
            at,
            &mut available,
            &mut waiting,
            &mut completions,
            &mut max_running_remaining,
        );
    }

    // Queue empty: the pseudocode's line 19 returns "no change", but
    // eq. 2 drives RSH negative as completions outpace arrivals and §V-C
    // scales down on RSH < 0 — and Fig. 10b shows HTA shrinking the pool
    // mid-workload. We follow eq. 2 *only when the queue is already empty
    // now* (true surplus: stage tails, post-probe lulls); a backlog that
    // merely gets absorbed within the window is "resources are enough, do
    // nothing" per line 19 — draining there would cancel pods whose tasks
    // have not dispatched yet. (See DESIGN.md for this
    // pseudocode/behaviour discrepancy.)
    let hidden = overflow_workers(&input.overflow, &input.worker_unit);

    if waiting.is_empty() {
        // The visible prefix was absorbed, but a truncated backlog is
        // still real demand the simulation never saw — provision for it
        // instead of reporting balance (the policy clamps to the quota).
        if hidden > 0 {
            return ScaleDecision {
                delta: hidden,
                next_action: input.rsrc_init_time,
            };
        }
        let idle_workers = available.divide_by(&input.worker_unit);
        if queue_empty_now
            && idle_workers > 0
            && idle_workers != i64::MAX
            && !input.active_workers.is_empty()
        {
            let next = if max_running_remaining.is_zero() {
                input.default_cycle
            } else {
                max_running_remaining.min(input.default_cycle)
            };
            return ScaleDecision {
                delta: -idle_workers,
                next_action: next,
            };
        }
        return ScaleDecision {
            delta: 0,
            next_action: input.default_cycle,
        };
    }

    // Lines 22–24: spare whole workers at the end of the cycle → drain
    // (never while truncated backlog hides behind the visible prefix).
    let idle_workers = available.divide_by(&input.worker_unit);
    if hidden == 0 && idle_workers > 0 && idle_workers != i64::MAX {
        let next = if max_running_remaining.is_zero() {
            input.default_cycle
        } else {
            max_running_remaining
        };
        return ScaleDecision {
            delta: -idle_workers,
            next_action: next,
        };
    }

    // Line 25: scale up by the workers the leftover waiting set needs
    // (first-fit packing into worker-unit bins).
    let mut bins: Vec<Resources> = Vec::new();
    for t in &waiting {
        if !t.resources.fits_in(&input.worker_unit) {
            // Larger than any worker — unsatisfiable; skip rather than
            // provision forever.
            continue;
        }
        match bins.iter_mut().find(|b| t.resources.fits_in(b)) {
            Some(b) => *b = b.saturating_sub(&t.resources),
            None => bins.push(input.worker_unit.saturating_sub(&t.resources)),
        }
    }
    ScaleDecision {
        delta: (bins.len() as i64).saturating_add(hidden),
        next_action: input.rsrc_init_time,
    }
}

/// Eq. 2 — forecast the resource shortage at the end of the next
/// initialization cycle, in cores:
///
/// ```text
/// RSH(t_rr) = RSH(t_nr) + Σ_{t=t_nr}^{t_rr} (ΔRSH(t) − ΔRIU(t))
/// ```
///
/// With no new arrivals known in advance (the autoscaler cannot see
/// future submissions), ΔRSH contributions come from queued tasks that
/// still cannot dispatch, and ΔRIU from predicted completions — which is
/// exactly what [`estimate`]'s forward simulation computes. This helper
/// exposes the scalar RSH value itself: positive = cores still missing at
/// `t_rr`, negative = whole-worker surplus (the §V-C "scale down if
/// RSH < 0" signal).
pub fn forecast_rsh_cores(input: &EstimatorInput) -> f64 {
    let d = estimate(input);
    if d.delta >= 0 {
        // Workers still needed, in core units of the worker pod size.
        d.delta as f64 * input.worker_unit.cores_f64()
    } else {
        -(-d.delta as f64) * input.worker_unit.cores_f64()
    }
}

/// Per-worker variant of Algorithm 1 (ablation of the paper's scalar
/// `avaRsrc`).
///
/// The paper's pseudocode pools all free capacity into one aggregate,
/// which can *phantom-fit* a task across fragments no single worker has
/// (e.g. two workers with 2 free cores each "fit" a 3-core task). This
/// variant keeps a per-worker free list: running tasks are first-fit
/// assigned to workers, completions free their own worker, and a waiting
/// task dispatches only into a worker that individually fits it. The
/// decision rules (empty-queue surplus drain, leftover packing) are
/// identical.
pub fn estimate_per_worker(input: &EstimatorInput) -> ScaleDecision {
    let window = input.rsrc_init_time;
    let queue_empty_now = input.waiting.is_empty();
    let n = input.active_workers.len();
    let mut free: Vec<Resources> = input.active_workers.clone();

    // First-fit the running tasks onto workers; tasks that fit nowhere
    // (stale snapshot) are dropped from the projection.
    // Entries: (completion_time, allocation, worker index).
    let mut completions: Vec<(Duration, Resources, usize)> = Vec::new();
    for t in &input.running {
        if let Some(w) = (0..n).find(|&w| t.allocation.fits_in(&free[w])) {
            free[w] = free[w].saturating_sub(&t.allocation);
            let pos = completions.partition_point(|(d, _, _)| *d <= t.remaining);
            completions.insert(pos, (t.remaining, t.allocation, w));
        }
    }

    let mut waiting: Vec<WaitingTask> = input.waiting.clone();
    let mut max_running_remaining = completions
        .iter()
        .map(|(d, _, _)| *d)
        .max()
        .unwrap_or(Duration::ZERO);

    fn dispatch_pw(
        now: Duration,
        free: &mut [Resources],
        waiting: &mut Vec<WaitingTask>,
        completions: &mut Vec<(Duration, Resources, usize)>,
        max_rem: &mut Duration,
    ) {
        let mut i = 0;
        while i < waiting.len() {
            let t = waiting[i];
            match (0..free.len()).find(|&w| t.resources.fits_in(&free[w])) {
                Some(w) => {
                    free[w] = free[w].saturating_sub(&t.resources);
                    let done_at = now + t.exec;
                    let pos = completions.partition_point(|(d, _, _)| *d <= done_at);
                    completions.insert(pos, (done_at, t.resources, w));
                    *max_rem = (*max_rem).max(done_at);
                    waiting.remove(i);
                }
                None => i += 1,
            }
        }
    }

    dispatch_pw(
        Duration::ZERO,
        &mut free,
        &mut waiting,
        &mut completions,
        &mut max_running_remaining,
    );
    let mut idx = 0;
    while idx < completions.len() {
        let (at, alloc, w) = completions[idx];
        idx += 1;
        if at > window {
            break;
        }
        free[w] += alloc;
        free[w] = free[w].min(&input.active_workers[w]);
        dispatch_pw(
            at,
            &mut free,
            &mut waiting,
            &mut completions,
            &mut max_running_remaining,
        );
    }

    // Whole workers idle at the end of the cycle (free == capacity).
    let idle_workers = (0..n)
        .filter(|&w| free[w] == input.active_workers[w])
        .count() as i64;
    let hidden = overflow_workers(&input.overflow, &input.worker_unit);

    if waiting.is_empty() {
        if hidden > 0 {
            return ScaleDecision {
                delta: hidden,
                next_action: input.rsrc_init_time,
            };
        }
        if queue_empty_now && idle_workers > 0 {
            let next = if max_running_remaining.is_zero() {
                input.default_cycle
            } else {
                max_running_remaining.min(input.default_cycle)
            };
            return ScaleDecision {
                delta: -idle_workers,
                next_action: next,
            };
        }
        return ScaleDecision {
            delta: 0,
            next_action: input.default_cycle,
        };
    }
    if hidden == 0 && idle_workers > 0 {
        let next = if max_running_remaining.is_zero() {
            input.default_cycle
        } else {
            max_running_remaining
        };
        return ScaleDecision {
            delta: -idle_workers,
            next_action: next,
        };
    }
    let mut bins: Vec<Resources> = Vec::new();
    for t in &waiting {
        if !t.resources.fits_in(&input.worker_unit) {
            continue;
        }
        match bins.iter_mut().find(|b| t.resources.fits_in(b)) {
            Some(b) => *b = b.saturating_sub(&t.resources),
            None => bins.push(input.worker_unit.saturating_sub(&t.resources)),
        }
    }
    ScaleDecision {
        delta: (bins.len() as i64).saturating_add(hidden),
        next_action: input.rsrc_init_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker() -> Resources {
        Resources::cores(3, 12_000, 50_000)
    }

    fn one_core() -> Resources {
        Resources::cores(1, 2_000, 2_000)
    }

    fn base_input() -> EstimatorInput {
        EstimatorInput {
            rsrc_init_time: Duration::from_secs(157),
            default_cycle: Duration::from_secs(60),
            running: Vec::new(),
            waiting: Vec::new(),
            active_workers: Vec::new(),
            worker_unit: worker(),
            overflow: Vec::new(),
        }
    }

    #[test]
    fn empty_queue_with_idle_pool_drains_surplus() {
        let mut input = base_input();
        input.active_workers = vec![worker(); 3];
        // Nothing waiting, nothing running: eq. 2 surplus → drain all 3.
        let d = estimate(&input);
        assert_eq!(d.delta, -3);
        assert_eq!(d.next_action, Duration::from_secs(60));
    }

    #[test]
    fn empty_queue_with_busy_pool_holds() {
        let mut input = base_input();
        input.active_workers = vec![worker(); 2];
        // Both workers fully busy past the window: no surplus, no change.
        input.running = vec![
            RunningTask {
                remaining: Duration::from_secs(10_000),
                allocation: worker(),
            };
            2
        ];
        let d = estimate(&input);
        assert_eq!(d.delta, 0);
    }

    #[test]
    fn empty_queue_with_no_workers_is_no_change() {
        let input = base_input();
        let d = estimate(&input);
        assert_eq!(d.delta, 0);
    }

    #[test]
    fn backlog_with_no_workers_scales_up_by_packing() {
        let mut input = base_input();
        // 9 one-core waiting tasks, 3-core workers → 3 workers.
        input.waiting = vec![
            WaitingTask {
                resources: one_core(),
                exec: Duration::from_secs(90)
            };
            9
        ];
        let d = estimate(&input);
        assert_eq!(d.delta, 3);
        assert_eq!(d.next_action, input.rsrc_init_time);
    }

    #[test]
    fn tasks_finishing_within_cycle_absorb_backlog() {
        let mut input = base_input();
        input.active_workers = vec![worker()];
        // Three 1-core tasks running, finishing at t=30 — well inside the
        // 157 s window; three more waiting with 30 s exec. The window fits
        // both generations on the single worker → no scaling.
        input.running = vec![
            RunningTask {
                remaining: Duration::from_secs(30),
                allocation: one_core()
            };
            3
        ];
        input.waiting = vec![
            WaitingTask {
                resources: one_core(),
                exec: Duration::from_secs(30)
            };
            3
        ];
        let d = estimate(&input);
        assert_eq!(d.delta, 0, "no shortage at the end of the cycle");
    }

    #[test]
    fn long_tasks_do_not_free_capacity_in_window() {
        let mut input = base_input();
        input.active_workers = vec![worker()];
        // Worker fully busy past the window; 6 waiting 1-core tasks need
        // 2 more workers.
        input.running = vec![RunningTask {
            remaining: Duration::from_secs(1000),
            allocation: worker(),
        }];
        input.waiting = vec![
            WaitingTask {
                resources: one_core(),
                exec: Duration::from_secs(90)
            };
            6
        ];
        let d = estimate(&input);
        assert_eq!(d.delta, 2);
    }

    #[test]
    fn idle_workers_are_drained_when_backlog_cannot_use_them() {
        let mut input = base_input();
        input.active_workers = vec![worker(); 4];
        // A waiting task that exceeds even the aggregate memory of the
        // pool can never dispatch; all four workers stay whole-idle and
        // the estimator reports them for drain.
        input.waiting = vec![WaitingTask {
            resources: Resources::new(1000, 60_000, 0),
            exec: Duration::from_secs(10),
        }];
        let d = estimate(&input);
        assert_eq!(d.delta, -4);
        assert_eq!(
            d.next_action, input.default_cycle,
            "nothing running → default cycle"
        );
    }

    #[test]
    fn scale_down_waits_for_longest_running_task() {
        let mut input = base_input();
        input.active_workers = vec![worker(); 3];
        input.running = vec![RunningTask {
            remaining: Duration::from_secs(400),
            allocation: one_core(),
        }];
        // Memory-heavy waiting task that cannot fit the leftover of any
        // dimension mix → leftover capacity stays idle.
        input.waiting = vec![WaitingTask {
            resources: Resources::new(1000, 50_000, 0),
            exec: Duration::from_secs(10),
        }];
        let d = estimate(&input);
        assert!(d.delta < 0);
        assert_eq!(d.next_action, Duration::from_secs(400));
    }

    #[test]
    fn unknown_resource_tasks_claim_whole_workers() {
        let mut input = base_input();
        // Caller substitutes worker_unit for unknown tasks: 4 of them →
        // 4 workers.
        input.waiting = vec![
            WaitingTask {
                resources: worker(),
                exec: Duration::from_secs(60)
            };
            4
        ];
        let d = estimate(&input);
        assert_eq!(d.delta, 4);
    }

    #[test]
    fn mixed_sizes_pack_first_fit() {
        let mut input = base_input();
        // 2-core and 1-core tasks: [2,1] per 3-core worker.
        input.waiting = vec![
            WaitingTask {
                resources: Resources::cores(2, 0, 0),
                exec: Duration::from_secs(60),
            },
            WaitingTask {
                resources: Resources::cores(1, 0, 0),
                exec: Duration::from_secs(60),
            },
            WaitingTask {
                resources: Resources::cores(2, 0, 0),
                exec: Duration::from_secs(60),
            },
            WaitingTask {
                resources: Resources::cores(1, 0, 0),
                exec: Duration::from_secs(60),
            },
        ];
        let d = estimate(&input);
        assert_eq!(d.delta, 2);
    }

    #[test]
    fn oversized_tasks_are_skipped_not_looped() {
        let mut input = base_input();
        input.waiting = vec![WaitingTask {
            resources: Resources::cores(64, 0, 0),
            exec: Duration::from_secs(60),
        }];
        let d = estimate(&input);
        assert_eq!(d.delta, 0, "unsatisfiable task provisions nothing");
    }

    #[test]
    fn cascade_of_completions_is_simulated() {
        let mut input = base_input();
        input.active_workers = vec![Resources::cores(1, 4_000, 10_000)];
        // A chain: running finishes at 10 s, then three 40 s waiting tasks
        // run back-to-back on the single 1-core worker: 10+40+40+40 = 130 s
        // < 157 s window → everything absorbed.
        input.running = vec![RunningTask {
            remaining: Duration::from_secs(10),
            allocation: Resources::cores(1, 4_000, 10_000),
        }];
        input.waiting = vec![
            WaitingTask {
                resources: one_core(),
                exec: Duration::from_secs(40)
            };
            3
        ];
        let d = estimate(&input);
        assert_eq!(d.delta, 0);
        // Two more 40 s tasks: the fourth still dispatches inside the
        // window (at t=130), but the fifth finds the worker busy until
        // t=170 > 157 — it is still waiting at cycle end → one worker up.
        for _ in 0..2 {
            input.waiting.push(WaitingTask {
                resources: one_core(),
                exec: Duration::from_secs(40),
            });
        }
        let d = estimate(&input);
        assert_eq!(d.delta, 1);
    }

    #[test]
    fn per_worker_rejects_phantom_aggregate_fits() {
        // Two 3-core workers, each pinned by a memory-heavy 1-core task
        // (8 GB of the 12 GB worker) so one task lands on each worker:
        // every worker has 2 cores free, the aggregate has 4. A 3-core
        // waiting task "fits" the aggregate but no single worker.
        let mut input = base_input();
        input.active_workers = vec![worker(); 2];
        input.running = vec![
            RunningTask {
                remaining: Duration::from_secs(10_000),
                allocation: Resources::new(1_000, 8_000, 20_000),
            };
            2
        ];
        input.waiting = vec![WaitingTask {
            resources: Resources::cores(3, 1_000, 1_000),
            exec: Duration::from_secs(60),
        }];
        // Aggregate (paper) absorbs the task → no change.
        let agg = estimate(&input);
        assert_eq!(agg.delta, 0, "aggregate phantom-fits");
        // Per-worker knows it cannot run anywhere → scale up.
        let pw = estimate_per_worker(&input);
        assert_eq!(pw.delta, 1, "per-worker sees the fragmentation");
    }

    #[test]
    fn per_worker_agrees_on_homogeneous_queues() {
        let mut input = base_input();
        input.active_workers = vec![worker(); 2];
        input.waiting = vec![
            WaitingTask {
                resources: one_core(),
                exec: Duration::from_secs(500)
            };
            12
        ];
        let a = estimate(&input);
        let b = estimate_per_worker(&input);
        assert_eq!(a.delta, b.delta, "no fragmentation → same answer");
    }

    #[test]
    fn per_worker_drains_only_whole_idle_workers() {
        let mut input = base_input();
        input.active_workers = vec![worker(); 3];
        // One long task pinning one worker; queue empty.
        input.running = vec![RunningTask {
            remaining: Duration::from_secs(10_000),
            allocation: one_core(),
        }];
        let d = estimate_per_worker(&input);
        // Two workers fully idle; the third is partially used → drain 2.
        assert_eq!(d.delta, -2);
    }

    #[test]
    fn forecast_rsh_signs_follow_the_decision() {
        let mut input = base_input();
        // Shortage: 9 one-core tasks, no workers → +3 workers → +9 cores.
        input.waiting = vec![
            WaitingTask {
                resources: one_core(),
                exec: Duration::from_secs(300)
            };
            9
        ];
        assert_eq!(forecast_rsh_cores(&input), 9.0);
        // Surplus: idle pool, empty queue → negative RSH.
        let mut idle = base_input();
        idle.active_workers = vec![worker(); 2];
        assert_eq!(forecast_rsh_cores(&idle), -6.0);
        // Balanced: nothing at all.
        assert_eq!(forecast_rsh_cores(&base_input()), 0.0);
    }

    #[test]
    fn overflow_converts_absorbed_queue_into_scale_up() {
        // The visible prefix (one quick task) is absorbed within the
        // window, but 300 truncated one-core tasks hide behind it. Without
        // overflow this reported "no change" and the pool starved; with it
        // the estimator asks for ceil(300/3) = 100 workers.
        let mut input = base_input();
        input.active_workers = vec![worker()];
        input.waiting = vec![WaitingTask {
            resources: one_core(),
            exec: Duration::from_secs(10),
        }];
        input.overflow = vec![(one_core(), 300)];
        let d = estimate(&input);
        assert_eq!(d.delta, 100);
        assert_eq!(d.next_action, input.rsrc_init_time);
        let pw = estimate_per_worker(&input);
        assert_eq!(pw.delta, 100, "per-worker variant agrees");
    }

    #[test]
    fn overflow_suppresses_idle_drain() {
        // Visible leftover cannot dispatch (memory-heavy), whole workers
        // sit idle at cycle end — normally a drain. A truncated backlog
        // means that idleness is an illusion of the cap: hold instead and
        // provision for the overflow.
        let mut input = base_input();
        input.active_workers = vec![worker(); 4];
        input.waiting = vec![WaitingTask {
            resources: Resources::new(1000, 60_000, 0),
            exec: Duration::from_secs(10),
        }];
        input.overflow = vec![(one_core(), 30)];
        let d = estimate(&input);
        assert!(
            d.delta > 0,
            "idle drain must not fire over a hidden backlog (got {})",
            d.delta
        );
    }

    #[test]
    fn overflow_adds_to_packed_scale_up() {
        // No workers: 9 visible one-core tasks pack into 3 workers, and
        // 9 overflow tasks add 3 more.
        let mut input = base_input();
        input.waiting = vec![
            WaitingTask {
                resources: one_core(),
                exec: Duration::from_secs(90)
            };
            9
        ];
        input.overflow = vec![(one_core(), 9)];
        let d = estimate(&input);
        assert_eq!(d.delta, 6);
    }

    #[test]
    fn degenerate_overflow_groups_contribute_nothing() {
        // Zero-count, oversized and zero-sized groups are all ignored —
        // no infinite provisioning, no division by zero.
        let mut input = base_input();
        input.waiting = vec![WaitingTask {
            resources: one_core(),
            exec: Duration::from_secs(90),
        }];
        input.overflow = vec![
            (one_core(), 0),
            (Resources::cores(64, 0, 0), 10),
            (Resources::ZERO, 10),
        ];
        let d = estimate(&input);
        assert_eq!(d.delta, 1, "only the visible task provisions");
    }

    #[test]
    fn zero_worker_unit_never_provisions_or_drains() {
        // A degenerate configuration (zero-sized worker unit) must not
        // divide-by-zero or request infinite workers.
        let input = EstimatorInput {
            rsrc_init_time: Duration::from_secs(157),
            default_cycle: Duration::from_secs(30),
            running: vec![],
            waiting: vec![WaitingTask {
                resources: one_core(),
                exec: Duration::from_secs(60),
            }],
            active_workers: vec![Resources::cores(3, 0, 0)],
            worker_unit: Resources::ZERO,
            overflow: Vec::new(),
        };
        let d = estimate(&input);
        assert_eq!(d.delta, 0, "nothing sane to do with a zero unit");
    }
}
