//! Integration tests spanning every crate: workflow → operator → Work
//! Queue → cluster → policy, through the full event loop.

use hta::cluster::{ClusterConfig, MachineType};
use hta::core::driver::{DriverConfig, RunResult, SystemDriver};
use hta::core::policy::{FixedPolicy, HpaPolicy, HtaConfig, HtaPolicy, ScalingPolicy};
use hta::core::OperatorConfig;
use hta::makeflow;
use hta::prelude::*;
use hta::workloads::{
    blast_multistage, blast_single_stage, iobound, BlastParams, IoBoundParams, MultistageParams,
};

fn small_cluster(max_nodes: usize) -> ClusterConfig {
    ClusterConfig {
        machine: MachineType::n1_standard_4(),
        min_nodes: 2,
        max_nodes,
        seed: 1,
        ..ClusterConfig::default()
    }
}

fn driver_cfg(hta: bool, max_workers: usize) -> DriverConfig {
    DriverConfig {
        cluster: small_cluster(max_workers),
        operator: OperatorConfig {
            warmup: hta,
            trust_declared: !hta,
            learn: true,
            seed: 2,
        },
        initial_workers: 2,
        max_workers,
        ..DriverConfig::default()
    }
}

fn small_blast(jobs: usize, declared: bool) -> hta::makeflow::Workflow {
    blast_single_stage(&BlastParams {
        jobs,
        wall: Duration::from_secs(60),
        db_mb: 200.0,
        declared: declared.then_some(Resources::cores(1, 3_000, 5_000)),
        ..BlastParams::default()
    })
}

fn run(cfg: DriverConfig, wf: hta::makeflow::Workflow, p: Box<dyn ScalingPolicy>) -> RunResult {
    let r = SystemDriver::new(cfg, wf, p).run();
    assert!(!r.timed_out, "{} timed out", r.label);
    r
}

#[test]
fn every_policy_completes_the_same_workload() {
    let policies: Vec<(bool, Box<dyn ScalingPolicy>)> = vec![
        (true, Box::new(HtaPolicy::new(HtaConfig::default()))),
        (false, Box::new(HpaPolicy::new(0.2, 2, 8))),
        (false, Box::new(HpaPolicy::new(0.5, 2, 8))),
        (false, Box::new(FixedPolicy::new(4))),
    ];
    for (hta, p) in policies {
        let label = p.name();
        let r = run(driver_cfg(hta, 8), small_blast(24, !hta), p);
        assert!(r.makespan_s > 0.0, "{label}");
        assert!(
            r.summary.accumulated_waste_core_s >= 0.0
                && r.summary.accumulated_shortage_core_s >= 0.0,
            "{label}"
        );
    }
}

#[test]
fn hta_scales_up_then_cleans_up() {
    let r = run(
        driver_cfg(true, 10),
        small_blast(60, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    );
    // Backlog forced growth beyond the initial pool…
    assert!(
        r.summary.peak_workers > 2.0,
        "peak {}",
        r.summary.peak_workers
    );
    // …and the clean-up stage drained everything (supply back to 0).
    assert_eq!(r.recorder.supply.last_value(), Some(0.0));
}

#[test]
fn hpa_is_blind_to_iobound_but_hta_is_not() {
    let hpa = run(
        driver_cfg(false, 10),
        iobound(
            &IoBoundParams {
                tasks: 30,
                wall: Duration::from_secs(120),
                ..IoBoundParams::default()
            }
            .declared(),
        ),
        Box::new(HpaPolicy::new(0.2, 2, 10)),
    );
    let hta = run(
        driver_cfg(true, 10),
        iobound(&IoBoundParams {
            tasks: 30,
            wall: Duration::from_secs(120),
            ..IoBoundParams::default()
        }),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    );
    assert!(
        hpa.summary.peak_workers <= 2.0,
        "HPA must never scale an I/O-bound pool (peak {})",
        hpa.summary.peak_workers
    );
    assert!(
        hta.summary.peak_workers > 2.0,
        "HTA must scale on queue demand (peak {})",
        hta.summary.peak_workers
    );
    assert!(
        hta.makespan_s < hpa.makespan_s,
        "HTA {} vs HPA {}",
        hta.makespan_s,
        hpa.makespan_s
    );
}

#[test]
fn multistage_barriers_drive_hta_scale_down_and_up() {
    let wf = blast_multistage(&MultistageParams {
        stage_tasks: vec![30, 6, 24],
        wall: Duration::from_secs(90),
        split_reduce_wall: Duration::from_secs(20),
        db_mb: 300.0,
        ..MultistageParams::default()
    });
    let r = run(
        driver_cfg(true, 10),
        wf,
        Box::new(HtaPolicy::new(HtaConfig::default())),
    );
    // Supply must dip below its peak mid-run (the stage-2 narrow phase),
    // i.e. HTA scaled down and later back up.
    let peak = r.recorder.supply.max_value();
    let mid = r.summary.runtime_s * 0.55;
    let supply_mid = r.recorder.supply.value_at(mid).unwrap_or(0.0);
    assert!(
        supply_mid < peak,
        "supply at t={mid:.0} ({supply_mid}) should be below peak ({peak})"
    );
}

#[test]
fn hpa_interrupts_tasks_hta_does_not() {
    // A workload with a long idle tail after a burst forces the HPA to
    // downscale while tasks still run on some workers.
    let wf = small_blast(40, true);
    let hpa = run(
        driver_cfg(false, 10),
        wf,
        Box::new(HpaPolicy::new(0.5, 2, 10)),
    );
    let hta = run(
        driver_cfg(true, 10),
        small_blast(40, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    );
    assert_eq!(hta.interrupted_tasks, 0, "HTA drains, never kills");
    // The HPA may or may not kill mid-run depending on timing; what must
    // hold is that every task still completed (the driver re-queues).
    assert!(hpa.makespan_s > 0.0);
}

#[test]
fn runs_are_deterministic() {
    let go = || {
        run(
            driver_cfg(true, 8),
            small_blast(25, false),
            Box::new(HtaPolicy::new(HtaConfig::default())),
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.events, b.events);
    assert_eq!(
        a.summary.accumulated_waste_core_s,
        b.summary.accumulated_waste_core_s
    );
    assert_eq!(a.recorder.supply.len(), b.recorder.supply.len());
}

#[test]
fn makeflow_text_runs_end_to_end() {
    let text = r#"
.SIZE db 100 cache
CATEGORY=work
SIM_WALL_SECS=30
SIM_ACTUAL_CORES=1
SIM_ACTUAL_MEMORY=1000
a.out: db
	work a
b.out: db
	work b
CATEGORY=merge
final: a.out b.out
	merge
"#;
    let wf = makeflow::parse(text).expect("parses");
    let r = run(
        driver_cfg(true, 4),
        wf,
        Box::new(HtaPolicy::new(HtaConfig::default())),
    );
    // Two parallel work jobs (one probed first) then the merge.
    assert!(r.makespan_s > 60.0, "probe serialization visible");
    assert!(r.makespan_s < 1000.0);
}

#[test]
fn init_time_is_measured_during_scale_up() {
    let r = run(
        driver_cfg(true, 10),
        small_blast(60, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    );
    assert!(
        !r.init_measurements.is_empty(),
        "scale-up must traverse the full pod lifecycle"
    );
    for d in &r.init_measurements {
        let s = d.as_secs_f64();
        // Most measurements see a full ~150 s cycle; a pod created while
        // an earlier batch was already provisioning legitimately measures
        // a shorter remainder.
        assert!((10.0..250.0).contains(&s), "init latency {s}");
    }
    assert!(
        r.init_measurements.iter().any(|d| d.as_secs_f64() > 120.0),
        "at least one full-cycle measurement"
    );
}

#[test]
fn metrics_are_internally_consistent() {
    let r = run(
        driver_cfg(true, 8),
        small_blast(30, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    );
    let rec = &r.recorder;
    // Waste is derived as max(supply − in_use, 0): never negative, and
    // zero whenever in_use equals supply.
    for (t, w) in rec.waste.iter() {
        assert!(w >= 0.0, "waste {w} at {t}");
    }
    // Utilization bounded.
    assert!(rec
        .cpu_utilization
        .values()
        .iter()
        .all(|v| (0.0..=1.0).contains(v)));
    // Demand = in_use + shortage at each recorded instant.
    for (t, d) in rec.demand.iter().take(50) {
        let i = rec.in_use.value_at(t).unwrap_or(0.0);
        let s = rec.shortage.value_at(t).unwrap_or(0.0);
        assert!((d - (i + s)).abs() < 1e-9, "demand identity at {t}");
    }
}

#[test]
fn safety_cutoff_reports_timeout() {
    // A workload far too large for a capped simulation horizon: the run
    // must stop at the cut-off and say so instead of spinning.
    let mut cfg = driver_cfg(true, 4);
    cfg.max_sim_time = Duration::from_secs(120);
    let r = SystemDriver::new(
        cfg,
        small_blast(500, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    assert!(r.timed_out);
    assert!(r.makespan_s <= 130.0, "clock stopped near the cut-off");
}

#[test]
fn sample_interval_controls_series_density() {
    let mut coarse = driver_cfg(true, 6);
    coarse.sample_interval = Duration::from_secs(30);
    let a = SystemDriver::new(
        coarse,
        small_blast(12, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    let mut fine = driver_cfg(true, 6);
    fine.sample_interval = Duration::from_secs(1);
    let b = SystemDriver::new(
        fine,
        small_blast(12, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    // Identical dynamics (sampling must not perturb the simulation)…
    assert_eq!(a.makespan_s, b.makespan_s);
    // …but the fine recorder holds far more samples.
    assert!(b.recorder.tasks_running.len() > a.recorder.tasks_running.len() * 3);
}

#[test]
fn per_category_timeline_series_are_recorded() {
    let r = SystemDriver::new(
        driver_cfg(true, 6),
        small_blast(12, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    let align = r
        .recorder
        .extra
        .get("running:align")
        .expect("category series exists");
    assert!(align.max_value() >= 1.0);
    // The series returns to zero by the end of the run.
    assert_eq!(align.last_value(), Some(0.0));
}
