//! Failure-injection tests: node crashes mid-run must re-queue the
//! victims' tasks, re-provision capacity, and still complete the
//! workload with every result produced exactly once.

use hta::cluster::{ClusterConfig, MachineType};
use hta::core::driver::{DriverConfig, SystemDriver};
use hta::core::policy::{HtaConfig, HtaPolicy};
use hta::core::OperatorConfig;
use hta::prelude::*;
use hta::workloads::{blast_single_stage, BlastParams};

fn cfg_with_failures(failures: Vec<Duration>) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig {
            machine: MachineType::n1_standard_4(),
            min_nodes: 2,
            max_nodes: 10,
            seed: 4,
            ..ClusterConfig::default()
        },
        operator: OperatorConfig {
            warmup: true,
            trust_declared: false,
            learn: true,
            seed: 4,
        },
        initial_workers: 2,
        max_workers: 10,
        node_failures: failures,
        ..DriverConfig::default()
    }
}

fn workload(jobs: usize) -> hta::makeflow::Workflow {
    blast_single_stage(&BlastParams {
        jobs,
        wall: Duration::from_secs(120),
        db_mb: 300.0,
        declared: None,
        ..BlastParams::default()
    })
}

#[test]
fn workload_survives_single_node_crash() {
    let r = SystemDriver::new(
        cfg_with_failures(vec![Duration::from_secs(400)]),
        workload(40),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    assert!(!r.timed_out);
    assert_eq!(r.failures_injected, 1);
    assert!(
        r.interrupted_tasks > 0,
        "a busy node crash must interrupt at least one task"
    );
}

#[test]
fn workload_survives_repeated_crashes() {
    let failures = (1..=4).map(|i| Duration::from_secs(300 * i)).collect();
    let r = SystemDriver::new(
        cfg_with_failures(failures),
        workload(60),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    assert!(!r.timed_out, "must finish despite 4 node crashes");
    assert!(r.failures_injected >= 2, "injected {}", r.failures_injected);
}

#[test]
fn crash_slows_but_does_not_inflate_completions() {
    let clean = SystemDriver::new(
        cfg_with_failures(vec![]),
        workload(40),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    let crashed = SystemDriver::new(
        cfg_with_failures(vec![Duration::from_secs(500)]),
        workload(40),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    assert!(!clean.timed_out && !crashed.timed_out);
    assert!(
        crashed.makespan_s >= clean.makespan_s,
        "crash cannot speed the run up: {} vs {}",
        crashed.makespan_s,
        clean.makespan_s
    );
    // Rerun work shows up as interruptions, not duplicated completions:
    // the workload still ends exactly when its last (re-run) task ends.
    assert_eq!(clean.interrupted_tasks, 0);
}

#[test]
fn failure_with_no_running_workers_is_harmless() {
    // Inject before any worker can possibly be running (t = 1 s, while
    // pods are still pulling images).
    let r = SystemDriver::new(
        cfg_with_failures(vec![Duration::from_secs(1)]),
        workload(10),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    assert!(!r.timed_out);
    assert_eq!(r.failures_injected, 0, "no running worker → no-op");
}

#[test]
fn master_node_crash_restarts_master_via_statefulset() {
    // The first worker pod shares node 0 with the master pod (4 cores =
    // 1 master + 3 worker), so crashing that worker's node also kills the
    // master. The StatefulSet must restart it with its sticky identity
    // and the workload must still complete.
    let r = SystemDriver::new(
        cfg_with_failures(vec![Duration::from_secs(400)]),
        workload(30),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    assert!(!r.timed_out, "workload must survive a master-node crash");
    assert_eq!(r.failures_injected, 1);
    // The trace is disabled by default in this config; the observable
    // contract is completion. Verify the run actually did work after the
    // crash: the makespan extends past the failure instant.
    assert!(r.makespan_s > 400.0);
}
