//! Whole-system property tests: random layered workflows, random knobs —
//! the stack must always terminate with every job done exactly once and
//! internally consistent metrics.

use hta::cluster::{ClusterConfig, MachineType};
use hta::core::driver::{DriverConfig, SystemDriver};
use hta::core::policy::{HpaPolicy, HtaConfig, HtaPolicy, ScalingPolicy};
use hta::core::{FaultPlan, OperatorConfig};
use hta::makeflow::{CategoryProfile, Job, JobId, SimProfile, Workflow};
use hta::prelude::*;
use proptest::prelude::*;

/// Random layered workflow: `widths` jobs per layer, each non-source job
/// consuming 1–2 outputs of the previous layer; categories alternate per
/// layer; wall times from `walls`.
fn build_workflow(widths: &[usize], picks: &[usize], walls: &[u64]) -> Workflow {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    let mut prev: Vec<String> = Vec::new();
    let mut pick = picks.iter().cycle();
    for (l, &w) in widths.iter().enumerate() {
        let mut outs = Vec::new();
        for j in 0..w {
            let out = format!("f{l}.{j}");
            let inputs = if prev.is_empty() {
                vec!["seed.dat".to_string()]
            } else {
                let k = 1 + pick.next().expect("cycle never ends") % 2.min(prev.len());
                (0..k)
                    .map(|i| {
                        prev[(pick.next().expect("cycle never ends") + i) % prev.len()].clone()
                    })
                    .collect()
            };
            jobs.push(Job {
                id: JobId(id),
                category: format!("layer{l}"),
                command: format!("job {id}"),
                inputs,
                outputs: vec![out.clone()],
            });
            outs.push(out);
            id += 1;
        }
        prev = outs;
    }
    let profiles: Vec<CategoryProfile> = (0..widths.len())
        .map(|l| CategoryProfile {
            name: format!("layer{l}"),
            declared: None,
            sim: SimProfile {
                wall: Duration::from_secs(walls[l % walls.len()]),
                cpu_fraction: 0.9,
                actual: Resources::cores(1, 2_000, 2_000),
                output_mb: 0.5,
                wall_jitter: 0.1,
                heavy_tail: false,
            },
        })
        .collect();
    Workflow::from_jobs(jobs, profiles)
        .expect("generated workflow is well-formed")
        .with_source_file("seed.dat", 50.0, true)
}

fn driver_cfg(seed: u64, hta: bool) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig {
            machine: MachineType::n1_standard_4(),
            min_nodes: 2,
            max_nodes: 8,
            seed,
            ..ClusterConfig::default()
        },
        operator: OperatorConfig {
            warmup: hta,
            trust_declared: false,
            learn: true,
            seed,
        },
        initial_workers: 2,
        max_workers: 8,
        sample_interval: Duration::from_secs(5),
        ..DriverConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every random workflow terminates under HTA with one task span per
    /// job, all completed, and consistent non-negative metrics.
    #[test]
    fn hta_always_terminates_and_conserves_tasks(
        widths in proptest::collection::vec(1usize..6, 1..4),
        picks in proptest::collection::vec(0usize..50, 8..32),
        walls in proptest::collection::vec(10u64..120, 1..4),
        seed in 0u64..1000,
    ) {
        let wf = build_workflow(&widths, &picks, &walls);
        let total_jobs = wf.len();
        let r = SystemDriver::new(
            driver_cfg(seed, true),
            wf,
            Box::new(HtaPolicy::new(HtaConfig::default())),
        )
        .run();
        prop_assert!(!r.timed_out, "timed out with widths {widths:?}");
        prop_assert_eq!(r.task_spans.len(), total_jobs);
        for span in &r.task_spans {
            prop_assert!(span.completed_s.is_some(), "task {} unfinished", span.label);
            let (s, c) = (span.started_s.unwrap(), span.completed_s.unwrap());
            prop_assert!(span.submitted_s <= s + 1e-9);
            prop_assert!(s <= c + 1e-9);
        }
        prop_assert!(r.summary.accumulated_waste_core_s >= 0.0);
        prop_assert!(r.summary.accumulated_shortage_core_s >= 0.0);
        // The pool was fully drained by clean-up.
        prop_assert_eq!(r.recorder.supply.last_value(), Some(0.0));
    }

    /// HPA also always terminates — interruptions may occur (evictions),
    /// but every job still finishes exactly once.
    #[test]
    fn hpa_always_terminates_despite_evictions(
        widths in proptest::collection::vec(1usize..5, 1..3),
        picks in proptest::collection::vec(0usize..50, 8..32),
        seed in 0u64..1000,
    ) {
        let wf = build_workflow(&widths, &picks, &[60]);
        let total_jobs = wf.len();
        let r = SystemDriver::new(
            driver_cfg(seed, false),
            wf,
            Box::new(HpaPolicy::new(0.3, 2, 8)) as Box<dyn ScalingPolicy>,
        )
        .run();
        prop_assert!(!r.timed_out);
        prop_assert_eq!(r.task_spans.len(), total_jobs);
        prop_assert!(r.task_spans.iter().all(|s| s.completed_s.is_some()));
    }

    /// Exactly-once accounting under a random seeded `FaultPlan`: the run
    /// resolves without timeout, every submitted task terminates exactly
    /// once (one span each, all resolved), permanently failed tasks match
    /// the failed-job count, and abandoned jobs are exactly the ones that
    /// never got a task.
    #[test]
    fn fault_plans_preserve_exactly_once_accounting(
        widths in proptest::collection::vec(1usize..5, 1..3),
        picks in proptest::collection::vec(0usize..50, 8..32),
        seed in 0u64..1000,
        transient in 0.0f64..0.2,
        oom in 0.0f64..0.05,
        pull in 0.0f64..0.2,
        crash_at in 200u64..2_000,
    ) {
        let wf = build_workflow(&widths, &picks, &[60]);
        let total_jobs = wf.len();
        let mut cfg = driver_cfg(seed, false);
        cfg.faults = FaultPlan {
            seed,
            node_crash_times: vec![Duration::from_secs(crash_at)],
            image_pull_fail_rate: pull,
            task_transient_rate: transient,
            task_oom_rate: oom,
            straggler_factor: Some(3.0),
            max_task_retries: 4,
            ..FaultPlan::default()
        };
        let r = SystemDriver::new(
            cfg,
            wf,
            Box::new(HpaPolicy::new(0.3, 2, 8)) as Box<dyn ScalingPolicy>,
        )
        .run();
        prop_assert!(!r.timed_out, "timed out with widths {widths:?} seed {seed}");
        // One span per submitted task; abandoned jobs were never submitted.
        prop_assert_eq!(r.task_spans.len(), total_jobs - r.jobs_abandoned);
        prop_assert!(r.task_spans.iter().all(|s| s.completed_s.is_some()),
            "every submitted task must terminate");
        // Terminal accounting: completions + failures + abandons = jobs.
        let completed_ok = r.task_spans.len() - r.jobs_failed;
        prop_assert_eq!(completed_ok + r.jobs_failed + r.jobs_abandoned, total_jobs);
        prop_assert_eq!(r.summary.faults.permanent_failures, r.jobs_failed as u64);
        // The pool still drains to zero at the end.
        prop_assert_eq!(r.recorder.supply.last_value(), Some(0.0));
    }
}
