//! Golden-file determinism: a fixed-seed run's `RunSummary` must stay
//! bit-for-bit identical to the committed JSON under `tests/golden/`,
//! across policies and with/without an active fault plan.
//!
//! These files were recorded before the hot-path overhaul (category
//! interning, effect sinks, incremental snapshots); any optimization
//! that changes them changed behavior, not just speed.
//!
//! To re-record after an *intentional* behavior change:
//! `GOLDEN_BLESS=1 cargo test --test golden_summary`.

use std::path::PathBuf;

use hta::cluster::{ClusterConfig, MachineType};
use hta::core::driver::{DriverConfig, RunResult, SystemDriver};
use hta::core::policy::{FixedPolicy, HpaPolicy, HtaConfig, HtaPolicy, ScalingPolicy};
use hta::core::{FaultPlan, OperatorConfig};
use hta::prelude::*;
use hta::workloads::{blast_multistage, MultistageParams};

const SEED: u64 = 7;

fn cfg(hta: bool, faults: FaultPlan) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig {
            machine: MachineType::n1_standard_4(),
            min_nodes: 2,
            max_nodes: 8,
            seed: SEED,
            ..ClusterConfig::default()
        },
        operator: OperatorConfig {
            warmup: hta,
            trust_declared: !hta,
            learn: true,
            seed: SEED,
        },
        initial_workers: 2,
        max_workers: 8,
        faults,
        ..DriverConfig::default()
    }
}

fn workload(declared: bool) -> hta::makeflow::Workflow {
    let p = MultistageParams {
        stage_tasks: vec![24, 6, 18],
        wall: Duration::from_secs(90),
        split_reduce_wall: Duration::from_secs(15),
        db_mb: 200.0,
        ..MultistageParams::default()
    };
    blast_multistage(&if declared { p.declared() } else { p })
}

fn run(policy: &str, faults: bool) -> RunResult {
    let plan = if faults {
        FaultPlan::light(SEED)
    } else {
        FaultPlan::default()
    };
    let hta = policy == "hta";
    let p: Box<dyn ScalingPolicy> = match policy {
        "hta" => Box::new(HtaPolicy::new(HtaConfig::default())),
        "hpa50" => Box::new(HpaPolicy::new(0.5, 2, 8)),
        "fixed6" => Box::new(FixedPolicy::new(6)),
        other => panic!("unknown policy {other}"),
    };
    SystemDriver::new(cfg(hta, plan), workload(!hta), p).run()
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn summary_json(r: &RunResult) -> String {
    let mut json = serde_json::to_string_pretty(&r.summary).expect("serialize RunSummary");
    json.push('\n');
    json
}

fn check(policy: &str, faults: bool) {
    let name = format!("{policy}_{}", if faults { "faults" } else { "clean" });
    let first = summary_json(&run(policy, faults));
    let second = summary_json(&run(policy, faults));
    assert_eq!(
        first, second,
        "{name}: two same-seed runs diverged in-process"
    );

    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, &first).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); record it with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        first,
        golden,
        "{name}: RunSummary diverged from the committed golden file {}",
        path.display()
    );
}

#[test]
fn hta_clean_matches_golden() {
    check("hta", false);
}

#[test]
fn hta_faults_matches_golden() {
    check("hta", true);
}

#[test]
fn hpa_clean_matches_golden() {
    check("hpa50", false);
}

#[test]
fn hpa_faults_matches_golden() {
    check("hpa50", true);
}

#[test]
fn fixed_clean_matches_golden() {
    check("fixed6", false);
}

#[test]
fn fixed_faults_matches_golden() {
    check("fixed6", true);
}
