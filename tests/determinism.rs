//! Determinism guarantees: identical configuration ⇒ identical run, and
//! distinct seeds ⇒ distinct (but valid) runs, across policies and
//! workloads.

use hta::cluster::{ClusterConfig, MachineType};
use hta::core::driver::{DriverConfig, RunResult, SystemDriver};
use hta::core::policy::{HpaPolicy, HtaConfig, HtaPolicy, ScalingPolicy};
use hta::core::{FaultPlan, OperatorConfig};
use hta::prelude::*;
use hta::workloads::{blast_multistage, iobound, IoBoundParams, MultistageParams};

fn cfg(seed: u64, hta: bool) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig {
            machine: MachineType::n1_standard_4(),
            min_nodes: 2,
            max_nodes: 8,
            seed,
            ..ClusterConfig::default()
        },
        operator: OperatorConfig {
            warmup: hta,
            trust_declared: !hta,
            learn: true,
            seed,
        },
        initial_workers: 2,
        max_workers: 8,
        ..DriverConfig::default()
    }
}

fn multistage(declared: bool) -> hta::makeflow::Workflow {
    let p = MultistageParams {
        stage_tasks: vec![24, 6, 18],
        wall: Duration::from_secs(90),
        split_reduce_wall: Duration::from_secs(15),
        db_mb: 200.0,
        ..MultistageParams::default()
    };
    blast_multistage(&if declared { p.declared() } else { p })
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64, u64) {
    (
        r.makespan_s.to_bits(),
        r.summary.accumulated_waste_core_s.to_bits(),
        r.summary.accumulated_shortage_core_s.to_bits(),
        r.events,
    )
}

#[test]
fn hta_runs_are_bitwise_identical_per_seed() {
    let go = || {
        SystemDriver::new(
            cfg(7, true),
            multistage(false),
            Box::new(HtaPolicy::new(HtaConfig::default())),
        )
        .run()
    };
    let (a, b) = (go(), go());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // Full series identical, sample by sample.
    let sa: Vec<_> = a.recorder.supply.iter().collect();
    let sb: Vec<_> = b.recorder.supply.iter().collect();
    assert_eq!(sa, sb);
    // Task spans identical too.
    assert_eq!(a.task_spans, b.task_spans);
}

#[test]
fn hpa_runs_are_bitwise_identical_per_seed() {
    let go = || {
        SystemDriver::new(
            cfg(11, false),
            multistage(true),
            Box::new(HpaPolicy::new(0.2, 2, 8)) as Box<dyn ScalingPolicy>,
        )
        .run()
    };
    assert_eq!(fingerprint(&go()), fingerprint(&go()));
}

#[test]
fn different_seeds_change_latencies_but_not_correctness() {
    let run = |seed| {
        SystemDriver::new(
            cfg(seed, true),
            multistage(false),
            Box::new(HtaPolicy::new(HtaConfig::default())),
        )
        .run()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "seeds must actually matter"
    );
    for r in [&a, &b] {
        assert!(!r.timed_out);
        assert!(r.task_spans.iter().all(|s| s.completed_s.is_some()));
    }
    // But the outcomes stay in the same regime (makespans within 25 %).
    let ratio = a.makespan_s / b.makespan_s;
    assert!((0.75..1.34).contains(&ratio), "ratio {ratio}");
}

#[test]
fn fault_injection_runs_are_bitwise_identical_per_seed() {
    // The whole fault stack — node crash, pull failures, transient exits,
    // OOM kills — drawn from seeded RNG streams: two identical configs
    // must produce identical runs down to the task spans. (The node-crash
    // victim is deterministic too: the driver walks an ordered pod map.)
    let go = || {
        let mut c = cfg(5, true);
        c.faults = FaultPlan {
            seed: 5,
            node_crash_times: vec![Duration::from_secs(900)],
            image_pull_fail_rate: 0.15,
            task_transient_rate: 0.05,
            task_oom_rate: 0.01,
            max_task_retries: 5,
            ..FaultPlan::default()
        };
        SystemDriver::new(
            c,
            multistage(false),
            Box::new(HtaPolicy::new(HtaConfig::default())),
        )
        .run()
    };
    let (a, b) = (go(), go());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.summary, b.summary, "fault counters must match too");
    assert_eq!(a.task_spans, b.task_spans);
    assert!(!a.summary.faults.is_clean(), "chaos must actually fire");
    assert!(!a.timed_out);
}

#[test]
fn summary_json_snapshot_is_stable() {
    let r = SystemDriver::new(
        cfg(7, true),
        iobound(&IoBoundParams {
            tasks: 18,
            wall: Duration::from_secs(60),
            ..IoBoundParams::default()
        }),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    let json = serde_json::to_string(&r.summary).unwrap();
    // Field names are a public contract (the CLI writes them for users).
    for field in [
        "\"label\"",
        "\"runtime_s\"",
        "\"accumulated_waste_core_s\"",
        "\"accumulated_shortage_core_s\"",
        "\"avg_cpu_utilization\"",
        "\"avg_egress_mbps\"",
        "\"peak_nodes\"",
        "\"peak_workers\"",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    // And the JSON round-trips (approximately: serde_json's default float
    // parsing is not guaranteed bit-exact without the `float_roundtrip`
    // feature).
    let back: hta::metrics::RunSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(back.label, r.summary.label);
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs());
    assert!(close(back.runtime_s, r.summary.runtime_s));
    assert!(close(
        back.accumulated_waste_core_s,
        r.summary.accumulated_waste_core_s
    ));
    assert!(close(
        back.accumulated_shortage_core_s,
        r.summary.accumulated_shortage_core_s
    ));
    assert!(close(back.peak_workers, r.summary.peak_workers));
}
