//! End-to-end tests for the extra policies (oracle, target-tracking) and
//! the driver's trace ring.

use hta::cluster::{ClusterConfig, MachineType};
use hta::core::driver::{DriverConfig, SystemDriver};
use hta::core::policy::{HtaConfig, HtaPolicy};
use hta::core::{OperatorConfig, OraclePolicy, TargetTrackingConfig, TargetTrackingPolicy};
use hta::prelude::*;
use hta::workloads::{blast_single_stage, BlastParams};

fn cfg(is_informed: bool) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig {
            machine: MachineType::n1_standard_4(),
            min_nodes: 2,
            max_nodes: 10,
            seed: 6,
            ..ClusterConfig::default()
        },
        operator: OperatorConfig {
            warmup: is_informed,
            trust_declared: !is_informed,
            learn: true,
            seed: 6,
        },
        initial_workers: 2,
        max_workers: 10,
        trace_capacity: 512,
        ..DriverConfig::default()
    }
}

fn workload(jobs: usize, declared: bool) -> hta::makeflow::Workflow {
    blast_single_stage(&BlastParams {
        jobs,
        wall: Duration::from_secs(90),
        db_mb: 200.0,
        declared: declared.then_some(Resources::cores(1, 3_000, 5_000)),
        ..BlastParams::default()
    })
}

#[test]
fn oracle_completes_and_bounds_hta() {
    // The oracle scenario is fully informed end to end: the policy knows
    // the true footprints AND the workflow declares them to Work Queue
    // (otherwise tasks would still dispatch exclusively).
    let wf = workload(40, true);
    let oracle = SystemDriver::new(
        cfg(false),
        wf.clone(),
        Box::new(OraclePolicy::from_workflow(&wf)),
    )
    .run();
    let hta = SystemDriver::new(
        cfg(true),
        workload(40, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    assert!(!oracle.timed_out && !hta.timed_out);
    // The oracle knows requirements instantly (no probe serialization),
    // so it cannot be slower than HTA on this embarrassingly parallel
    // workload.
    assert!(
        oracle.makespan_s <= hta.makespan_s,
        "oracle {} vs hta {}",
        oracle.makespan_s,
        hta.makespan_s
    );
    assert!(oracle.summary.peak_workers > 2.0);
}

#[test]
fn target_tracking_scales_on_queue_depth() {
    let r = SystemDriver::new(
        cfg(false),
        workload(40, true),
        Box::new(TargetTrackingPolicy::new(TargetTrackingConfig::default())),
    )
    .run();
    assert!(!r.timed_out);
    assert!(
        r.summary.peak_workers > 2.0,
        "queue depth must drive growth (peak {})",
        r.summary.peak_workers
    );
}

#[test]
fn trace_records_scaling_decisions() {
    let r = SystemDriver::new(
        cfg(true),
        workload(30, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    assert!(!r.trace.is_empty(), "tracing was enabled");
    let rendered = r.trace.render();
    assert!(
        rendered.contains("CreateWorkers"),
        "scale-up decision traced:\n{rendered}"
    );
    assert!(
        rendered.contains("workload complete"),
        "completion traced:\n{rendered}"
    );
}

#[test]
fn trace_disabled_by_default() {
    let mut c = cfg(true);
    c.trace_capacity = 0;
    let r = SystemDriver::new(
        c,
        workload(10, false),
        Box::new(HtaPolicy::new(HtaConfig::default())),
    )
    .run();
    assert!(r.trace.is_empty());
}

#[test]
fn min_pool_floor_reduces_scaling_churn_on_oscillating_workloads() {
    use hta::core::policy::HtaConfig as HC;
    use hta::workloads::{md_ensemble, MdParams};

    let params = MdParams {
        replicas: 9,
        rounds: 4,
        wall_jitter: 0.05,
        sim_wall: Duration::from_secs(120),
        ..MdParams::default()
    };
    let run = |hta_cfg: HC| {
        let mut c = cfg(true);
        c.trace_capacity = 4096;
        SystemDriver::new(c, md_ensemble(&params), Box::new(HtaPolicy::new(hta_cfg))).run()
    };
    let churny = run(HC::default());
    let floored = run(HC {
        min_pool: 3,
        ..HC::default()
    });
    assert!(!churny.timed_out && !floored.timed_out);
    let drains = |r: &hta::core::driver::RunResult| r.trace.count_matching("DrainWorkers");
    assert!(
        drains(&floored) <= drains(&churny),
        "floor must not increase drain decisions ({} vs {})",
        drains(&floored),
        drains(&churny)
    );
    // The floor trades waste for fewer re-provisioning lags: runtime must
    // not regress.
    assert!(
        floored.makespan_s <= churny.makespan_s * 1.02,
        "floored {} vs churny {}",
        floored.makespan_s,
        churny.makespan_s
    );
}
