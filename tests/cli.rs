//! Integration tests for the `hta-run` CLI binary.

use std::process::Command;

fn hta_run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hta-run"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn demo_runs_to_completion() {
    let out = hta_run(&["demo"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("policy: HTA"));
    assert!(stdout.contains("makespan:"));
    assert!(stdout.contains("workflow: 6 jobs"));
}

#[test]
fn policy_flag_selects_hpa() {
    let out = hta_run(&["demo", "--policy", "hpa:20"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("policy: HPA(20% CPU)"));
}

#[test]
fn oracle_and_tracking_policies_run() {
    for p in ["oracle", "tracking", "fixed:4"] {
        let out = hta_run(&["demo", "--policy", p]);
        assert!(
            out.status.success(),
            "policy {p}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn chart_flag_prints_series() {
    let out = hta_run(&["demo", "--chart"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("supply_cores"), "{stdout}");
}

#[test]
fn gantt_flag_prints_task_timeline() {
    let out = hta_run(&["demo", "--gantt"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("task-0"), "{stdout}");
    assert!(stdout.contains("lowercase = executing"));
}

#[test]
fn json_and_csv_exports_write_files() {
    let dir = std::env::temp_dir().join(format!("hta-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("run.json");
    let csv = dir.join("run.csv");
    let out = hta_run(&[
        "demo",
        "--json",
        json.to_str().unwrap(),
        "--csv",
        csv.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let json_text = std::fs::read_to_string(&json).unwrap();
    assert!(json_text.contains("\"runtime_s\""));
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("series,time_s,value"));
    assert!(
        csv_text.contains("running:align"),
        "per-category series exported"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn workflow_files_in_repo_run() {
    let out = hta_run(&["examples/workflows/blast.mf", "--seed", "7"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("workflow: 26 jobs"));
}

#[test]
fn failure_injection_flag_is_reported() {
    let out = hta_run(&["demo", "--fail-at", "100"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("node failures:"));
}

#[test]
fn fault_knobs_print_failure_summary() {
    let out = hta_run(&[
        "demo",
        "--policy",
        "fixed:3",
        "--task-fail-rate",
        "0.9",
        "--max-retries",
        "8",
        "--seed",
        "9",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("failures & retries"), "{stdout}");
    assert!(stdout.contains("task retries:"), "{stdout}");
    assert!(stdout.contains("wasted work:"), "{stdout}");
}

#[test]
fn fail_node_alias_and_oom_knob_are_accepted() {
    let out = hta_run(&[
        "demo",
        "--policy",
        "fixed:3",
        "--fail-node",
        "100,200",
        "--oom-rate",
        "0.05",
        "--pull-fail-rate",
        "0.1",
        "--straggler-factor",
        "4.0",
        "--preempt-mean",
        "100000",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("node failures:"), "{stdout}");
}

#[test]
fn same_seed_fault_runs_are_identical() {
    let args = [
        "demo",
        "--policy",
        "fixed:3",
        "--task-fail-rate",
        "0.5",
        "--pull-fail-rate",
        "0.2",
        "--seed",
        "1234",
    ];
    let a = hta_run(&args);
    let b = hta_run(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
        "seeded fault injection must be deterministic"
    );
}

#[test]
fn bad_fault_knob_values_fail_cleanly() {
    for args in [
        vec!["demo", "--task-fail-rate", "abc"],
        vec!["demo", "--max-retries", "-1"],
        vec!["demo", "--fail-node", "1,x"],
    ] {
        let out = hta_run(&args);
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn network_knobs_print_network_summary_deterministically() {
    let args = [
        "demo",
        "--policy",
        "fixed:3",
        "--net-delay",
        "20",
        "--net-loss",
        "0.01",
        "--lease",
        "30",
        "--partition",
        "100:150:asym",
        "--seed",
        "9",
    ];
    let a = hta_run(&args);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let stdout = String::from_utf8_lossy(&a.stdout);
    assert!(stdout.contains("--- network ---"), "{stdout}");
    assert!(stdout.contains("control messages:"), "{stdout}");
    assert!(stdout.contains("partitioned:"), "{stdout}");
    let b = hta_run(&args);
    assert_eq!(
        stdout,
        String::from_utf8_lossy(&b.stdout),
        "seeded network faults must be deterministic"
    );
}

#[test]
fn bad_network_knob_values_fail_cleanly() {
    for args in [
        vec!["demo", "--net-loss", "2.0"],
        vec!["demo", "--net-loss", "abc"],
        vec!["demo", "--partition", "bogus"],
        vec!["demo", "--partition", "100:20:sideways"],
        vec!["demo", "--lease", "abc"],
    ] {
        let out = hta_run(&args);
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn synth_trace_runs_open_loop() {
    let out = hta_run(&["--trace", "synth:demo-1k", "--max-workers", "30"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("trace: synth:demo-1k (1000 tasks)"),
        "{stdout}"
    );
    assert!(stdout.contains("--- trace ---"), "{stdout}");
    assert!(
        stdout.contains("arrivals:                   1000 of 1000 (exhausted)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("tasks completed:            1000"),
        "{stdout}"
    );
}

#[test]
fn synth_trace_knobs_override_the_preset() {
    let out = hta_run(&["--trace", "synth:demo-1k,tasks=200", "--policy", "fixed:6"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(200 tasks)"), "{stdout}");
    assert!(
        stdout.contains("tasks completed:             200"),
        "{stdout}"
    );
}

#[test]
fn same_seed_trace_runs_are_identical() {
    let args = ["--trace", "synth:demo-1k", "--seed", "77"];
    let a = hta_run(&args);
    let b = hta_run(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
        "seeded trace generation must be deterministic (digest line included)"
    );
}

#[test]
fn azure_trace_file_runs() {
    let out = hta_run(&["--trace", "azure:examples/traces/azure-demo.csv"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("trace: azure:examples/traces/azure-demo.csv"),
        "{stdout}"
    );
    assert!(stdout.contains("(exhausted)"), "{stdout}");
}

#[test]
fn trace_composes_with_fault_injection() {
    let out = hta_run(&[
        "--trace",
        "synth:demo-1k,tasks=300",
        "--task-fail-rate",
        "0.2",
        "--net-loss",
        "0.01",
        "--seed",
        "5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--- trace ---"), "{stdout}");
    assert!(stdout.contains("task retries:"), "{stdout}");
}

#[test]
fn bad_trace_specs_fail_cleanly() {
    for args in [
        vec!["--trace", "synth:nonsense"],
        vec!["--trace", "bogus:x"],
        vec!["--trace", "synth:demo-1k,tasks=abc"],
        vec!["--trace", "azure:/definitely/not/a/file.csv"],
        vec!["demo", "--trace", "synth:demo-1k"], // mutually exclusive
        vec!["--trace", "synth:demo-1k", "--policy", "oracle"],
        vec!["--trace", "synth:demo-1k", "--analyze-only"],
        vec![], // neither workflow nor trace
    ] {
        let out = hta_run(&args);
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty(), "args {args:?} should explain");
    }
}

#[test]
fn trace_log_flag_prints_decision_tail() {
    let out = hta_run(&["demo", "--trace-log"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--- decision log"), "{stdout}");
}

#[test]
fn analyze_only_skips_the_run() {
    let out = hta_run(&["examples/workflows/md.mf", "--analyze-only"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("makespan lower bound"));
    assert!(!stdout.contains("makespan:"), "must not simulate");
}

#[test]
fn bad_inputs_fail_cleanly() {
    for args in [
        vec!["demo", "--policy", "nonsense"],
        vec!["demo", "--max-workers", "abc"],
        vec!["/definitely/not/a/file.mf"],
        vec!["demo", "--nodes", "5"], // wants MIN:MAX
        vec!["demo", "--unknown-flag"],
    ] {
        let out = hta_run(&args);
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}
