//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the tiny subset of the `rand 0.8` API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`RngCore`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and [`rngs::SmallRng`].
//!
//! `SmallRng` is xoshiro256++ seeded via SplitMix64 — the same construction
//! upstream `rand 0.8` uses on 64-bit targets. Streams are deterministic per
//! seed, which is all the simulation requires (run-to-run reproducibility,
//! not bit-compatibility with upstream).

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed, expanded with SplitMix64 (matches the
    /// upstream `rand` construction).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from an RNG's raw output (the `Standard`
/// distribution in upstream `rand`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as upstream does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// Unbiased uniform draw in `[0, bound)` via Lemire-style rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % bound;
        }
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation use.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[r.gen_range(0u64..=2) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
