//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — benchmark groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock timer: each benchmark runs `sample_size` timed iterations
//! after one warm-up and reports min/mean over samples.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, |b| f(b));
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b),
        );
        self
    }

    /// Run a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one sample of `f`, recording the elapsed wall clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        drop(out);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm-up sample (discarded).
    let mut warm = Bencher {
        samples: Vec::new(),
    };
    f(&mut warm);
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    let mean = total / n as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!("bench {name:<50} min {min:>12.3?}   mean {mean:>12.3?}   samples {n}");
}

/// Mirror of criterion's group-definition macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of criterion's entry-point macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
