//! The JSON value tree plus printer and parser shared by the in-repo
//! `serde` and `serde_json` stand-ins.

use std::fmt;

/// A JSON document.
///
/// Objects preserve insertion order (derive order for structs), so printed
/// output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (kept exact; `u64` does not round-trip through
    /// `f64` above 2^53).
    Uint(u64),
    /// Negative (or explicitly signed) integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error { msg: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        // `{}` prints integral floats without a decimal point; keep them
        // valid JSON numbers either way (e.g. "1" is fine), but make the
        // round-trip unambiguous by emitting as-is.
        out.push_str(&s);
    } else {
        // JSON has no NaN/Inf; mirror serde_json's `null`.
        out.push_str("null");
    }
}

impl Value {
    /// Compact single-line rendering.
    pub fn print_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Uint(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(f) => push_float(out, *f),
            Value::Str(s) => push_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.print_compact(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, k);
                    out.push(':');
                    v.print_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty rendering with two-space indentation (serde_json style).
    pub fn print_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    item.print_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    push_escaped(out, k);
                    out.push_str(": ");
                    v.print_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            Value::Arr(_) => out.push_str("[]"),
            Value::Obj(_) => out.push_str("{}"),
            other => other.print_compact(out),
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::msg(format!("JSON parse error at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multibyte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("hta\n\"x\"".into())),
            ("n".into(), Value::Uint(18446744073709551615)),
            ("neg".into(), Value::Int(-42)),
            ("pi".into(), Value::Float(3.25)),
            (
                "arr".into(),
                Value::Arr(vec![Value::Null, Value::Bool(true), Value::Obj(vec![])]),
            ),
        ]);
        let mut compact = String::new();
        v.print_compact(&mut compact);
        assert_eq!(parse(&compact).unwrap(), v);
        let mut pretty = String::new();
        v.print_pretty(&mut pretty, 0);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }
}
