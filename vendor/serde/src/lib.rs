//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no crate registry, so the workspace vendors a
//! JSON-oriented serialization core: a [`json::Value`] tree, [`Serialize`] /
//! [`Deserialize`] traits mapping types to and from that tree, and derive
//! macros (re-exported from `serde_derive`) covering the shapes this
//! workspace uses — named-field structs, newtype/tuple structs, and enums
//! with unit or tuple variants, plus `#[serde(default)]` on fields.
//!
//! This is intentionally not the full serde data model: the only consumer is
//! the in-repo `serde_json` stand-in.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{Error, Value};

/// Types convertible into a JSON [`Value`] tree.
pub trait Serialize {
    /// Build the JSON tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `self` out of the JSON tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Uint(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Uint(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Uint(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Uint(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(Error::msg("tuple arity mismatch"));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::msg("expected array for tuple")),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types usable as JSON object keys.
pub trait JsonKey: Sized {
    /// Render as a map key.
    fn to_key(&self) -> String;
    /// Parse back from a map key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg("bad integer map key"))
            }
        }
    )*};
}

int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object for map")),
        }
    }
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: JsonKey + Ord + std::hash::Hash,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: JsonKey + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object for map")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Helpers the derive macro expands against.
pub mod __private {
    pub use super::json::{Error, Value};
    pub use super::{Deserialize, Serialize};

    /// Look up a field in an object value.
    pub fn get<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
        match v {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Error for a missing required field.
    pub fn missing_field(ty: &str, field: &str) -> Error {
        Error::msg(format!("missing field `{field}` for {ty}"))
    }

    /// Error for an unrecognized enum payload.
    pub fn bad_enum(ty: &str) -> Error {
        Error::msg(format!("unrecognized variant for {ty}"))
    }
}
