//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`Strategy`] over integer/float ranges, tuples, [`Just`], `any::<bool>()`,
//! `proptest::collection::vec`, `.prop_map`, and the `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Generation is seeded deterministically per test case, so failures are
//! reproducible run to run. There is no shrinking: a failing case panics
//! with its generated inputs' `Debug` rendering instead.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by the `prop_assert!` family (or a `prop_assume!`
/// rejection, which skips the case instead of failing the test).
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure message.
    pub message: String,
    /// True when raised by `prop_assume!` — skip, don't fail.
    pub rejected: bool,
}

impl TestCaseError {
    /// A hard failure.
    pub fn fail(message: String) -> Self {
        TestCaseError {
            message,
            rejected: false,
        }
    }

    /// An assumption rejection (case is skipped).
    pub fn reject(message: String) -> Self {
        TestCaseError {
            message,
            rejected: true,
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for one test case, derived from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps per-test streams distinct.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x9E37_79B9),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

/// A value generator.
pub trait Strategy {
    /// Type of generated values.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a dependent strategy from each value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! sint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

sint_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Closed-interval draw: scale the unit sample to [lo, hi].
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// `any::<T>()` — full-domain strategy for simple types.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain bool strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arb_int {
    ($($t:ty => $s:ident),*) => {$(
        /// Full-domain integer strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct $s;
        impl Strategy for $s {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = $s;
            fn arbitrary() -> $s { $s }
        }
    )*};
}

arb_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
         i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize);

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The test-definition macro. Parses an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items (attributes, including `#[test]`, pass
/// through), running each body over deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut prop_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let mut inputs = ::std::string::String::new();
                $(
                    let generated = $crate::Strategy::generate(&($strat), &mut prop_rng);
                    inputs.push_str(&format!(
                        concat!(stringify!($arg), " = {:?}; "),
                        &generated
                    ));
                    let $arg = generated;
                )+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    {
                        $body
                    }
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    if e.rejected {
                        continue;
                    }
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        cfg.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Skip the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0.5f64..2.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!((b as u8) < 2);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_patterns((a, b) in (1u64..4, 1u64..4), c in 0u64..2) {
            prop_assume!(c == 0 || c == 1);
            prop_assert!((1..16).contains(&(a * b)));
        }

        #[test]
        fn map_works(v in (1u64..4, 1u64..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(TestRng::for_case("t", 0).next_u64(), c.next_u64());
    }
}
