//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! in-repo `serde` stand-in.
//!
//! No `syn`/`quote` (no registry access), so the item is parsed directly
//! from the `proc_macro` token stream. Supported shapes — the ones this
//! workspace uses:
//!
//! - structs with named fields (honoring `#[serde(default)]` per field)
//! - tuple structs (newtype and multi-field)
//! - unit structs
//! - enums with unit and tuple variants
//!
//! Generic types and struct-variant enums are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    has_default: bool,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[...]`, including doc comments); return whether any
/// of them was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        if args.stream().to_string().contains("default") {
                            has_default = true;
                        }
                    }
                }
            }
            *pos += 2;
        } else {
            break;
        }
    }
    has_default
}

/// Skip `pub`, `pub(crate)`, `pub(super)`, ...
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Advance past the current element up to (not including) a comma at
/// angle-bracket depth zero. Groups count as single trees.
fn skip_to_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle <= 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Count comma-separated elements in a group body (tuple fields).
fn count_elems(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < body.len() {
        count += 1;
        skip_to_comma(body, &mut pos);
        pos += 1; // the comma itself
    }
    count
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        let has_default = skip_attrs(body, &mut pos);
        skip_vis(body, &mut pos);
        let name = match body.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("unexpected token in fields: {other:?}")),
        };
        pos += 1;
        match body.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_to_comma(body, &mut pos);
        pos += 1;
        fields.push(Field { name, has_default });
    }
    Ok(fields)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        skip_attrs(body, &mut pos);
        let name = match body.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("unexpected token in enum: {other:?}")),
        };
        pos += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = body.get(pos) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    arity = count_elems(&inner);
                    pos += 1;
                }
                Delimiter::Brace => {
                    return Err(format!("struct variant `{name}` is not supported"));
                }
                _ => {}
            }
        }
        skip_to_comma(body, &mut pos);
        pos += 1;
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_vis(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the offline serde derive"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&body)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct {
                    name,
                    arity: count_elems(&body),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(&body)?,
                })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const V: &str = "::serde::__private::Value";

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "pairs.push(({n:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{n})));\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> {V} {{\n\
                 let mut pairs: ::std::vec::Vec<(::std::string::String, {V})> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 {V}::Obj(pairs)\n}}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> {V} {{ ::serde::Serialize::to_value(&self.0) }}\n}}\n"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> {V} {{ {V}::Arr(vec![{}]) }}\n}}\n",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> {V} {{ {V}::Null }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v.arity {
                    0 => format!(
                        "{name}::{vn} => {V}::Str({vn:?}.to_string()),\n",
                        vn = v.name
                    ),
                    1 => format!(
                        "{name}::{vn}(x0) => {V}::Obj(vec![({vn:?}.to_string(), \
                         ::serde::Serialize::to_value(x0))]),\n",
                        vn = v.name
                    ),
                    n => {
                        let binds: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{vn}({b}) => {V}::Obj(vec![({vn:?}.to_string(), \
                             {V}::Arr(vec![{vs}]))]),\n",
                            vn = v.name,
                            b = binds.join(", "),
                            vs = vals.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> {V} {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let header = |name: &str, body: &str| {
        format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &{V}) -> \
             ::std::result::Result<Self, ::serde::__private::Error> {{\n{body}\n}}\n}}\n"
        )
    };
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let missing = if f.has_default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(\
                             ::serde::__private::missing_field({name:?}, {n:?}))",
                            n = f.name
                        )
                    };
                    format!(
                        "{n}: match ::serde::__private::get(v, {n:?}) {{\n\
                         ::std::option::Option::Some(x) => \
                         ::serde::Deserialize::from_value(x)?,\n\
                         ::std::option::Option::None => {missing},\n}},\n",
                        n = f.name
                    )
                })
                .collect();
            header(
                name,
                &format!("::std::result::Result::Ok({name} {{\n{inits}}})"),
            )
        }
        Item::TupleStruct { name, arity: 1 } => header(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            header(
                name,
                &format!(
                    "match v {{\n\
                     {V}::Arr(items) if items.len() == {arity} => \
                     ::std::result::Result::Ok({name}({elems})),\n\
                     _ => ::std::result::Result::Err(::serde::__private::bad_enum({name:?})),\n}}",
                    elems = elems.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => header(name, &format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v.arity {
                    0 => format!(
                        "{V}::Str(s) if s == {vn:?} => \
                         ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ),
                    1 => format!(
                        "{V}::Obj(pairs) if pairs.len() == 1 && pairs[0].0 == {vn:?} => \
                         ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(&pairs[0].1)?)),\n",
                        vn = v.name
                    ),
                    n => {
                        let elems: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "{V}::Obj(pairs) if pairs.len() == 1 && pairs[0].0 == {vn:?} => \
                             match &pairs[0].1 {{\n\
                             {V}::Arr(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vn}({es})),\n\
                             _ => ::std::result::Result::Err(\
                             ::serde::__private::bad_enum({name:?})),\n}},\n",
                            vn = v.name,
                            es = elems.join(", ")
                        )
                    }
                })
                .collect();
            header(
                name,
                &format!(
                    "match v {{\n{arms}\
                     _ => ::std::result::Result::Err(::serde::__private::bad_enum({name:?})),\n}}"
                ),
            )
        }
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
