//! Minimal offline stand-in for `serde_json`, layered over the in-repo
//! `serde` stand-in: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`from_value`], and the shared [`Value`] / [`Error`] types.

pub use serde::json::{parse, Error, Value};

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().print_compact(&mut out);
    Ok(out)
}

/// Serialize to a pretty (two-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().print_pretty(&mut out, 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into a deserializable type.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn primitives_round_trip() {
        let v = vec![1u64, 2, 3];
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn map_round_trips() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        m.insert("b".to_string(), -2.0f64);
        let s = super::to_string_pretty(&m).unwrap();
        let back: BTreeMap<String, f64> = super::from_str(&s).unwrap();
        assert_eq!(back, m);
    }
}
