//! Minimal offline stand-in for `rayon`.
//!
//! Supports the `slice.par_iter().map(f).collect::<Vec<_>>()` shape the
//! bench binaries use. Work is executed on `std::thread::scope` threads
//! (one chunk per available core), and results are returned in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Traits to bring `par_iter` into scope.
    pub use super::{IntoParallelRefIterator, ParallelIterator};
}

/// `par_iter()` on slices (and anything derefing to a slice, e.g. `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Create a parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// The subset of rayon's `ParallelIterator` the workspace uses.
pub trait ParallelIterator: Sized {
    /// Item produced by this iterator.
    type Item: Send;

    /// Evaluate the pipeline for every input index, in parallel.
    fn run(self) -> Vec<Self::Item>;

    /// Apply `f` to every element.
    fn map<R, F>(self, f: F) -> Mapped<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Mapped { inner: self, f }
    }

    /// Collect into a container (only `Vec` targets are supported).
    fn collect<C: FromParallel<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }
}

/// Composition of an inner parallel iterator and a map function.
pub struct Mapped<I, F> {
    inner: I,
    f: F,
}

impl<'a, T: Sync + 'a> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

impl<'a, T, F, R> ParallelIterator for Mapped<ParIter<'a, T>, F>
where
    T: Sync + 'a,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.inner.items, &self.f)
    }
}

impl<'a, T, F1, R1, F2, R2> ParallelIterator for Mapped<Mapped<ParIter<'a, T>, F1>, F2>
where
    T: Sync + 'a,
    F1: Fn(&'a T) -> R1 + Sync,
    R1: Send,
    F2: Fn(R1) -> R2 + Sync,
    R2: Send,
{
    type Item = R2;

    fn run(self) -> Vec<R2> {
        let inner_f = self.inner.f;
        let outer_f = self.f;
        parallel_map(self.inner.inner.items, &|t| outer_f(inner_f(t)))
    }
}

/// Run `f` over every element of `items` on scoped worker threads,
/// returning results in input order.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                *slots[i].lock().unwrap() = Some(f(&items[i]));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker produced result"))
        .collect()
}

/// Ordered collection target for [`ParallelIterator::collect`].
pub trait FromParallel<T> {
    /// Assemble from results already in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u64> = Vec::new();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}
