//! `hta-run` — run a Makeflow workflow file through the simulated stack.
//!
//! ```text
//! hta-run <workflow.mf | demo> [options]
//! hta-run --trace <synth:preset[,knobs] | azure:file.csv> [options]
//!
//! options:
//!   --trace <spec>         drive the run from an open-loop arrival
//!                          trace instead of a workflow DAG:
//!                            synth:<preset>[,tasks=N][,rate=R][,amp=A]
//!                              presets: demo-1k, trace-50k, blast-1m
//!                            azure:<file.csv>
//!                              per-minute invocation-count CSV
//!   --policy <hta | hpa:<target%> | fixed:<n> | oracle | tracking | mpc>
//!                          autoscaler driving the worker pool  [hta]
//!                          (mpc forks what-if branches of the live
//!                          simulation at each decision; see hta-forecast)
//!   --max-workers <n>      worker-pod quota                    [20]
//!   --nodes <min>:<max>    cluster size bounds                 [3:20]
//!   --worker-cores <n>     worker pod size in cores            [3]
//!   --initial <n>          worker pods created at start        [3]
//!   --seed <n>             simulation seed                     [42]
//!   --fail-at <s,s,...>    inject node crashes at these times
//!   --fail-node <s,s,...>  alias for --fail-at
//!   --crash-master <s,s,...> kill the control plane (master+operator+
//!                          policy) at these times; it checkpoint-restores
//!                          and WAL-replays after the outage
//!   --crash-outage <s>     control-plane outage length           [60]
//!   --checkpoint-interval <s> control-plane checkpoint cadence   [120]
//!   --task-fail-rate <p>   transient task-failure probability  [0]
//!   --oom-rate <p>         OOM-kill probability per attempt    [0]
//!   --pull-fail-rate <p>   image-pull failure probability      [0]
//!   --net-delay <ms>       control-message one-way delay (ms)  [0]
//!   --net-loss <p>         control-message loss probability    [0]
//!   --partition <start:dur[:asym]>
//!                          cut the master↔worker link from start for dur
//!                          seconds (repeatable); `:asym` cuts only the
//!                          worker→master direction (zombie workers)
//!   --lease <s>            heartbeat lease; a worker silent this long is
//!                          presumed dead and its tasks re-queued  [off]
//!   --preempt-mean <s>     spot preemption mean lifetime (s)
//!   --max-retries <n>      per-task retry budget               [3]
//!   --straggler-factor <f> speculative re-execution threshold
//!   --csv <path>           write the full metric series as CSV
//!   --json <path>          write the run summary as JSON
//!   --chart                print supply/demand ASCII chart
//!   --gantt                print a per-task Gantt timeline
//!   --trace-log            print the scaling-decision trace tail
//!   --analyze-only         print DAG structure + plan bounds, don't run
//! ```
//!
//! Example:
//! ```sh
//! cargo run --release --bin hta-run -- demo --policy hpa:20 --chart
//! ```

use std::collections::VecDeque;
use std::process::ExitCode;

use hta::cluster::ClusterConfig;
use hta::core::driver::{DriverConfig, SystemDriver};
use hta::core::policy::{FixedPolicy, HpaPolicy, HtaConfig, HtaPolicy, ScalingPolicy};
use hta::core::{
    ControlPlaneFaults, FaultPlan, OperatorConfig, OraclePolicy, TargetTrackingConfig,
    TargetTrackingPolicy,
};
use hta::forecast::{MpcConfig, MpcPolicy};
use hta::makeflow;
use hta::metrics::AsciiChart;
use hta::prelude::*;
use hta::workqueue::{NetworkFaults, Partition};

const DEMO: &str = r#"
# Demo: a two-stage pipeline with a shared cacheable input.
DB=ref.db
.SIZE ref.db 700 cache
.SIZE input.fasta 20

CATEGORY=split
SIM_WALL_SECS=30
part.0 part.1 part.2 part.3: input.fasta
	split input.fasta 4

CATEGORY=align
SIM_WALL_SECS=120
SIM_ACTUAL_CORES=1
SIM_ACTUAL_MEMORY=2500
SIM_OUTPUT_MB=1.0
out.0: $(DB) part.0
	align part.0
out.1: $(DB) part.1
	align part.1
out.2: $(DB) part.2
	align part.2
out.3: $(DB) part.3
	align part.3

CATEGORY=reduce
SIM_WALL_SECS=20
result: out.0 out.1 out.2 out.3
	merge
"#;

struct Options {
    workflow: Option<String>,
    trace_source: Option<String>,
    policy: String,
    max_workers: usize,
    min_nodes: usize,
    max_nodes: usize,
    worker_cores: i64,
    initial: usize,
    seed: u64,
    fail_at: Vec<u64>,
    crash_master: Vec<u64>,
    crash_outage: u64,
    checkpoint_interval: u64,
    task_fail_rate: f64,
    oom_rate: f64,
    pull_fail_rate: f64,
    net_delay_ms: u64,
    net_loss: f64,
    partitions: Vec<Partition>,
    lease: Option<u64>,
    preempt_mean: Option<u64>,
    max_retries: u32,
    straggler_factor: Option<f64>,
    csv: Option<String>,
    json: Option<String>,
    chart: bool,
    gantt: bool,
    trace_log: bool,
    analyze_only: bool,
}

fn usage() -> &'static str {
    "usage: hta-run <workflow.mf | demo> [options]\n\
            hta-run --trace <synth:preset[,knobs] | azure:file.csv> [options]\n\
     options: [--policy hta|hpa:<target%>|fixed:<n>|oracle|tracking|mpc] \
     [--max-workers N] [--nodes MIN:MAX] [--worker-cores N] [--initial N] [--seed N] \
     [--fail-at s,s,...] [--fail-node s,s,...] [--crash-master s,s,...] [--crash-outage S] \
     [--checkpoint-interval S] [--task-fail-rate P] [--oom-rate P] \
     [--pull-fail-rate P] [--net-delay MS] [--net-loss P] [--partition START:DUR[:asym]] \
     [--lease S] [--preempt-mean S] [--max-retries N] [--straggler-factor F] \
     [--csv path] [--json path] [--chart] [--gantt] [--trace-log] [--analyze-only]"
}

fn parse_args() -> Result<Options, String> {
    let mut args: VecDeque<String> = std::env::args().skip(1).collect();
    let mut opt = Options {
        workflow: None,
        trace_source: None,
        policy: "hta".into(),
        max_workers: 20,
        min_nodes: 3,
        max_nodes: 20,
        worker_cores: 3,
        initial: 3,
        seed: 42,
        fail_at: Vec::new(),
        crash_master: Vec::new(),
        crash_outage: 60,
        checkpoint_interval: 120,
        task_fail_rate: 0.0,
        oom_rate: 0.0,
        pull_fail_rate: 0.0,
        net_delay_ms: 0,
        net_loss: 0.0,
        partitions: Vec::new(),
        lease: None,
        preempt_mean: None,
        max_retries: 3,
        straggler_factor: None,
        csv: None,
        json: None,
        chart: false,
        gantt: false,
        trace_log: false,
        analyze_only: false,
    };
    let need = |args: &mut VecDeque<String>, flag: &str| {
        args.pop_front()
            .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
    };
    while let Some(a) = args.pop_front() {
        match a.as_str() {
            "--trace" => {
                let spec = need(&mut args, "--trace")?;
                if !spec.starts_with("synth:") && !spec.starts_with("azure:") {
                    return Err(format!(
                        "--trace: expected synth:<preset>[,knobs] or azure:<file.csv>, got {spec:?}"
                    ));
                }
                opt.trace_source = Some(spec);
            }
            "--policy" => opt.policy = need(&mut args, "--policy")?,
            "--max-workers" => {
                opt.max_workers = need(&mut args, "--max-workers")?
                    .parse()
                    .map_err(|e| format!("--max-workers: {e}"))?
            }
            "--nodes" => {
                let v = need(&mut args, "--nodes")?;
                let (lo, hi) = v
                    .split_once(':')
                    .ok_or_else(|| "--nodes wants MIN:MAX".to_string())?;
                opt.min_nodes = lo.parse().map_err(|e| format!("--nodes: {e}"))?;
                opt.max_nodes = hi.parse().map_err(|e| format!("--nodes: {e}"))?;
            }
            "--worker-cores" => {
                opt.worker_cores = need(&mut args, "--worker-cores")?
                    .parse()
                    .map_err(|e| format!("--worker-cores: {e}"))?
            }
            "--initial" => {
                opt.initial = need(&mut args, "--initial")?
                    .parse()
                    .map_err(|e| format!("--initial: {e}"))?
            }
            "--seed" => {
                opt.seed = need(&mut args, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--fail-at" | "--fail-node" => {
                let v = need(&mut args, &a)?;
                for part in v.split(',') {
                    opt.fail_at
                        .push(part.trim().parse().map_err(|e| format!("{a}: {e}"))?);
                }
            }
            "--crash-master" => {
                let v = need(&mut args, "--crash-master")?;
                for part in v.split(',') {
                    opt.crash_master
                        .push(part.trim().parse().map_err(|e| format!("{a}: {e}"))?);
                }
            }
            "--crash-outage" => {
                opt.crash_outage = need(&mut args, "--crash-outage")?
                    .parse()
                    .map_err(|e| format!("--crash-outage: {e}"))?
            }
            "--checkpoint-interval" => {
                opt.checkpoint_interval = need(&mut args, "--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-interval: {e}"))?
            }
            "--task-fail-rate" => {
                opt.task_fail_rate = need(&mut args, "--task-fail-rate")?
                    .parse()
                    .map_err(|e| format!("--task-fail-rate: {e}"))?
            }
            "--oom-rate" => {
                opt.oom_rate = need(&mut args, "--oom-rate")?
                    .parse()
                    .map_err(|e| format!("--oom-rate: {e}"))?
            }
            "--pull-fail-rate" => {
                opt.pull_fail_rate = need(&mut args, "--pull-fail-rate")?
                    .parse()
                    .map_err(|e| format!("--pull-fail-rate: {e}"))?
            }
            "--net-delay" => {
                opt.net_delay_ms = need(&mut args, "--net-delay")?
                    .parse()
                    .map_err(|e| format!("--net-delay: {e}"))?
            }
            "--net-loss" => {
                let p: f64 = need(&mut args, "--net-loss")?
                    .parse()
                    .map_err(|e| format!("--net-loss: {e}"))?;
                // p = 1 would drop every message forever: no dispatch
                // can ever be acknowledged, so the run only ends at the
                // simulation cut-off.
                if !(0.0..1.0).contains(&p) {
                    return Err(format!("--net-loss: probability {p} not in [0, 1)"));
                }
                opt.net_loss = p;
            }
            "--partition" => {
                let v = need(&mut args, "--partition")?;
                let mut parts = v.split(':');
                let start: u64 = parts
                    .next()
                    .ok_or_else(|| "--partition wants START:DUR[:asym]".to_string())?
                    .parse()
                    .map_err(|e| format!("--partition start: {e}"))?;
                let dur: u64 = parts
                    .next()
                    .ok_or_else(|| "--partition wants START:DUR[:asym]".to_string())?
                    .parse()
                    .map_err(|e| format!("--partition duration: {e}"))?;
                let asymmetric = match parts.next() {
                    None => false,
                    Some("asym") => true,
                    Some(other) => {
                        return Err(format!("--partition: expected \"asym\", got {other:?}"))
                    }
                };
                opt.partitions.push(Partition {
                    start: Duration::from_secs(start),
                    duration: Duration::from_secs(dur),
                    asymmetric,
                });
            }
            "--lease" => {
                opt.lease = Some(
                    need(&mut args, "--lease")?
                        .parse()
                        .map_err(|e| format!("--lease: {e}"))?,
                )
            }
            "--preempt-mean" => {
                opt.preempt_mean = Some(
                    need(&mut args, "--preempt-mean")?
                        .parse()
                        .map_err(|e| format!("--preempt-mean: {e}"))?,
                )
            }
            "--max-retries" => {
                opt.max_retries = need(&mut args, "--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?
            }
            "--straggler-factor" => {
                opt.straggler_factor = Some(
                    need(&mut args, "--straggler-factor")?
                        .parse()
                        .map_err(|e| format!("--straggler-factor: {e}"))?,
                )
            }
            "--csv" => opt.csv = Some(need(&mut args, "--csv")?),
            "--json" => opt.json = Some(need(&mut args, "--json")?),
            "--chart" => opt.chart = true,
            "--gantt" => opt.gantt = true,
            "--trace-log" => opt.trace_log = true,
            "--analyze-only" => opt.analyze_only = true,
            other if !other.starts_with('-') && opt.workflow.is_none() => {
                opt.workflow = Some(other.to_string())
            }
            other if !other.starts_with('-') => {
                return Err(format!(
                    "unexpected second workflow argument {other:?}\n{}",
                    usage()
                ))
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    match (&opt.workflow, &opt.trace_source) {
        (None, None) => Err(format!("need a workflow file or --trace\n{}", usage())),
        (Some(w), Some(_)) => Err(format!(
            "a workflow ({w:?}) and --trace are mutually exclusive — \
             an open-loop trace defines its own arrivals\n{}",
            usage()
        )),
        _ => Ok(opt),
    }
}

fn build_policy(
    spec: &str,
    workflow: Option<&makeflow::Workflow>,
    min: usize,
    max: usize,
) -> Result<(Box<dyn ScalingPolicy>, bool), String> {
    // Returns (policy, is_hta): non-HTA policies trust declared resources.
    if spec == "hta" {
        return Ok((Box::new(HtaPolicy::new(HtaConfig::default())), true));
    }
    if spec == "oracle" {
        let workflow = workflow.ok_or(
            "--policy oracle plans from the workflow DAG; \
             an open-loop --trace has none",
        )?;
        return Ok((Box::new(OraclePolicy::from_workflow(workflow)), false));
    }
    if spec == "mpc" {
        return Ok((Box::new(MpcPolicy::new(MpcConfig::default())), true));
    }
    if spec == "tracking" {
        return Ok((
            Box::new(TargetTrackingPolicy::new(TargetTrackingConfig::default())),
            false,
        ));
    }
    if let Some(t) = spec.strip_prefix("hpa:") {
        let pct: f64 = t
            .trim_end_matches('%')
            .parse()
            .map_err(|e| format!("--policy hpa: {e}"))?;
        return Ok((Box::new(HpaPolicy::new(pct / 100.0, min, max)), false));
    }
    if let Some(n) = spec.strip_prefix("fixed:") {
        let n: usize = n.parse().map_err(|e| format!("--policy fixed: {e}"))?;
        return Ok((Box::new(FixedPolicy::new(n)), false));
    }
    Err(format!("unknown policy {spec:?}\n{}", usage()))
}

fn main() -> ExitCode {
    let opt = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Workflow mode parses a DAG; trace mode builds an open-loop arrival
    // source. Exactly one is present (enforced by parse_args).
    let workflow = match &opt.workflow {
        Some(name) => {
            let text = if name == "demo" {
                DEMO.to_string()
            } else {
                match std::fs::read_to_string(name) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {name}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            match makeflow::parse(&text) {
                Ok(w) => Some(w),
                Err(e) => {
                    eprintln!("parse error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let arrivals = match &opt.trace_source {
        Some(spec) => {
            let source = if let Some(synth) = spec.strip_prefix("synth:") {
                hta::trace::ArrivalSource::synth(synth, opt.seed)
            } else if let Some(path) = spec.strip_prefix("azure:") {
                // The trace crate stays I/O-free: the CLI owns the read.
                match std::fs::read_to_string(path) {
                    Ok(text) => hta::trace::ArrivalSource::azure_csv(spec.clone(), &text, opt.seed),
                    Err(e) => Err(format!("cannot read {path}: {e}")),
                }
            } else {
                unreachable!("parse_args validated the prefix")
            };
            match source {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("--trace: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    if let Some(workflow) = &workflow {
        let analysis = makeflow::analyze(workflow);
        println!(
            "workflow: {} jobs, categories {:?}",
            workflow.len(),
            workflow.dag.categories()
        );
        println!(
            "structure: depth {}, peak width {}, critical path {:.0} s, avg parallelism {:.1}",
            analysis.depth,
            analysis.max_width,
            analysis.critical_path.as_secs_f64(),
            analysis.average_parallelism()
        );

        if opt.analyze_only {
            println!("\nper-level widths: {:?}", analysis.level_widths);
            println!("category counts:  {:?}", analysis.category_counts);
            for slots in [3usize, 15, 30, 60] {
                println!(
                    "makespan lower bound @ {slots:>3} slots: {:>8.0} s",
                    analysis.makespan_lower_bound(slots).as_secs_f64()
                );
            }
            return ExitCode::SUCCESS;
        }
    } else if opt.analyze_only {
        eprintln!("--analyze-only inspects a workflow DAG; --trace has none");
        return ExitCode::FAILURE;
    } else if let Some(source) = &arrivals {
        let stats = source.stats();
        println!("trace: {} ({} tasks)", stats.label, stats.total_tasks);
    }

    let (policy, is_hta) =
        match build_policy(&opt.policy, workflow.as_ref(), opt.initial, opt.max_workers) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };

    let cfg = DriverConfig {
        cluster: ClusterConfig {
            min_nodes: opt.min_nodes,
            max_nodes: opt.max_nodes,
            seed: opt.seed,
            preemption_mean_lifetime: opt.preempt_mean.map(Duration::from_secs),
            ..ClusterConfig::default()
        },
        // Node crash times go through `node_failures` directly; the plan
        // carries the probabilistic fault rates.
        faults: FaultPlan {
            seed: opt.seed,
            image_pull_fail_rate: opt.pull_fail_rate,
            task_transient_rate: opt.task_fail_rate,
            task_oom_rate: opt.oom_rate,
            straggler_factor: opt.straggler_factor,
            max_task_retries: opt.max_retries,
            control_plane: ControlPlaneFaults {
                crash_times: opt
                    .crash_master
                    .iter()
                    .map(|s| Duration::from_secs(*s))
                    .collect(),
                outage: Duration::from_secs(opt.crash_outage),
                checkpoint_interval: Duration::from_secs(opt.checkpoint_interval),
            },
            network: NetworkFaults {
                delay: Duration::from_millis(opt.net_delay_ms),
                jitter: if opt.net_delay_ms > 0 { 0.3 } else { 0.0 },
                loss: opt.net_loss,
                partitions: opt.partitions.clone(),
                lease: opt.lease.map_or(Duration::ZERO, Duration::from_secs),
                ..NetworkFaults::default()
            },
            ..FaultPlan::default()
        },
        operator: OperatorConfig {
            // Open-loop traces have no workflow jobs to warm-up probe;
            // categories are learned from the stream itself.
            warmup: is_hta && arrivals.is_none(),
            trust_declared: !is_hta || arrivals.is_some(),
            learn: true,
            seed: opt.seed,
        },
        worker_request: Resources::cores(opt.worker_cores, 4_000 * opt.worker_cores, 50_000),
        initial_workers: opt.initial,
        max_workers: opt.max_workers,
        node_failures: opt
            .fail_at
            .iter()
            .map(|s| Duration::from_secs(*s))
            .collect(),
        trace_capacity: if opt.trace_log { 2048 } else { 0 },
        ..DriverConfig::default()
    };
    let label = policy.name();
    println!("policy: {label}\n");
    let result = match (workflow, arrivals) {
        (Some(workflow), None) => SystemDriver::new(cfg, workflow, policy).run(),
        (None, Some(source)) => SystemDriver::new_traced(cfg, source, policy).run(),
        _ => unreachable!("parse_args enforces exactly one input"),
    };

    println!("makespan:             {:>10.0} s", result.makespan_s);
    println!(
        "accumulated waste:    {:>10.0} core·s",
        result.summary.accumulated_waste_core_s
    );
    println!(
        "accumulated shortage: {:>10.0} core·s",
        result.summary.accumulated_shortage_core_s
    );
    println!(
        "avg CPU utilization:  {:>10.1} %",
        result.summary.avg_cpu_utilization * 100.0
    );
    println!(
        "peak worker pods:     {:>10.0}",
        result.summary.peak_workers
    );
    println!("peak nodes:           {:>10.0}", result.summary.peak_nodes);
    println!("interrupted tasks:    {:>10}", result.interrupted_tasks);
    println!("node failures:        {:>10}", result.failures_injected);
    println!("simulation events:    {:>10}", result.events);
    if let Some(a) = &result.arrivals {
        println!("--- trace ---");
        println!("source:               {:>10}", a.label);
        println!(
            "arrivals:             {:>10} of {} ({})",
            a.submitted,
            a.total_tasks,
            if a.exhausted {
                "exhausted"
            } else {
                "cut off early"
            }
        );
        if let (Some(first), Some(last)) = (a.first_arrival_s, a.last_arrival_s) {
            println!(
                "arrival span:         {:>10.0} s ({first:.1} → {last:.1})",
                last - first
            );
        }
        println!(
            "tasks completed:      {:>10} (digest {:#018x})",
            result.completed, result.completed_digest
        );
    }
    let f = &result.summary.faults;
    if !f.is_clean() || result.jobs_failed > 0 {
        println!("--- failures & retries ---");
        println!(
            "task retries:         {:>10} ({} transient, {} oom)",
            f.task_retries, f.transient_failures, f.oom_kills
        );
        println!(
            "permanent failures:   {:>10} ({} jobs abandoned)",
            f.permanent_failures, f.jobs_abandoned
        );
        if f.speculative_launched > 0 {
            println!(
                "speculative dups:     {:>10} launched, {} won",
                f.speculative_launched, f.speculative_wins
            );
        }
        if f.image_pull_retries > 0 {
            println!(
                "image-pull retries:   {:>10} ({} gave up)",
                f.image_pull_retries, f.image_pull_gaveups
            );
        }
        println!("wasted work:          {:>10.0} core·s", f.wasted_core_s);
        if f.mean_recovery_s > 0.0 {
            println!("mean recovery:        {:>10.0} s", f.mean_recovery_s);
        }
        if f.master_crashes > 0 {
            println!(
                "master crashes:       {:>10} survived ({:.0} s down, {} checkpoints)",
                f.master_crashes, f.outage_s, f.checkpoints_taken
            );
            println!(
                "crash recovery:       {:>10} tasks re-queued, {} WAL records replayed",
                f.recovery_requeued, f.wal_replayed
            );
            for (i, r) in result.recoveries.iter().enumerate() {
                println!(
                    "  recovery #{i}: crashed t={:.0}s, back t={:.0}s \
                     (checkpoint t={:.0}s, {} replayed, {} re-queued, {} workers re-adopted)",
                    r.crashed_at.as_secs_f64(),
                    r.recovered_at.as_secs_f64(),
                    r.checkpoint_at.as_secs_f64(),
                    r.wal_replayed,
                    r.tasks_requeued,
                    r.workers_readopted
                );
            }
        }
        let net_touched = f.msgs_dropped + f.msgs_duplicated + f.msgs_reordered + f.leases_expired
            > 0
            || f.partition_s > 0.0;
        if net_touched {
            println!("--- network ---");
            println!(
                "control messages:     {:>10} dropped, {} duplicated, {} reordered",
                f.msgs_dropped, f.msgs_duplicated, f.msgs_reordered
            );
            println!(
                "worker leases:        {:>10} expired ({} zombie completions fenced)",
                f.leases_expired, f.zombies_fenced
            );
            if f.partition_s > 0.0 {
                println!("partitioned:          {:>10.0} s", f.partition_s);
            }
        }
    }
    if result.timed_out {
        eprintln!("WARNING: run hit the simulation time cut-off");
    }

    if opt.chart {
        let mut chart = AsciiChart::new(
            format!("{label}: supply (s) / demand (d) / in-use (u), cores"),
            100,
            14,
            result.makespan_s,
        );
        chart.add('s', result.recorder.supply.clone());
        chart.add('d', result.recorder.demand.clone());
        chart.add('u', result.recorder.in_use.clone());
        println!("\n{}", chart.render());
    }
    if opt.trace_log {
        println!(
            "\n--- decision log (most recent {} entries) ---",
            result.trace.len()
        );
        print!("{}", result.trace.render());
    }
    if opt.gantt {
        println!(
            "\n{}",
            hta::metrics::render_gantt(&result.task_spans, result.makespan_s, 100, 24)
        );
    }
    if let Some(path) = opt.csv {
        if let Err(e) = std::fs::write(&path, result.recorder.to_csv()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("series written to {path}");
    }
    if let Some(path) = opt.json {
        match serde_json::to_string_pretty(&result.summary) {
            Ok(js) => {
                if let Err(e) = std::fs::write(&path, js) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("summary written to {path}");
            }
            Err(e) => {
                eprintln!("serialize: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
