//! # hta — High-Throughput Autoscaler (facade crate)
//!
//! Reproduction of *"Autoscaling High-Throughput Workloads on Container
//! Orchestrators"* (Zheng, Kremer-Herman, Shaffer, Thain — IEEE CLUSTER
//! 2020), built as a deterministic discrete-event simulation of the full
//! Makeflow / Work Queue / Kubernetes stack plus the paper's contribution,
//! the HTA feedback autoscaler.
//!
//! This crate re-exports every workspace crate under one roof and provides
//! a [`prelude`] for the examples.
//!
//! # Example
//!
//! ```
//! use hta::core::driver::{DriverConfig, SystemDriver};
//! use hta::core::policy::{HtaConfig, HtaPolicy};
//! use hta::workloads::{blast_single_stage, BlastParams};
//! use hta::prelude::*;
//!
//! let workflow = blast_single_stage(&BlastParams {
//!     jobs: 6,
//!     wall: Duration::from_secs(30),
//!     ..BlastParams::default()
//! });
//! let result = SystemDriver::new(
//!     DriverConfig::default(),
//!     workflow,
//!     Box::new(HtaPolicy::new(HtaConfig::default())),
//! )
//! .run();
//! assert!(!result.timed_out);
//! assert_eq!(result.task_spans.len(), 6);
//! ```
//!
//! See the individual crates for the subsystem documentation:
//!
//! * [`des`] — simulation kernel (time, event queue, RNG),
//! * [`resources`] — resource vectors and the pool ledger,
//! * [`metrics`] — run recording, integrals, ASCII charts,
//! * [`cluster`] — the Kubernetes-like orchestrator simulator,
//! * [`workqueue`] — the Work-Queue-like master/worker scheduler,
//! * [`makeflow`] — the DAG workflow manager,
//! * [`core`] — HTA itself: estimator, operator, policies, driver,
//! * [`forecast`] — snapshot/fork what-if branches and the MPC policy,
//! * [`workloads`] — BLAST-like and I/O-bound workload generators,
//! * [`trace`] — streaming open-loop arrival traces (synthetic + Azure).

pub use hta_cluster as cluster;
pub use hta_core as core;
pub use hta_des as des;
pub use hta_forecast as forecast;
pub use hta_makeflow as makeflow;
pub use hta_metrics as metrics;
pub use hta_resources as resources;
pub use hta_trace as trace;
pub use hta_workloads as workloads;
pub use hta_workqueue as workqueue;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use hta_des::{Duration, EventQueue, SimRng, SimTime};
    pub use hta_metrics::{RunRecorder, RunSummary};
    pub use hta_resources::{ResourcePool, Resources};
}
