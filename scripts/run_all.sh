#!/usr/bin/env bash
# Regenerate every paper figure/table plus the extension experiments, then
# the combined markdown report. Results land in target/paper-results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p hta-bench

for fig in fig2 fig4 fig6 fig10 fig11 ablation spot sweep; do
    echo "=== $fig ==="
    cargo run --release -q -p hta-bench --bin "$fig"
    echo
done

cargo run --release -q -p hta-bench --bin report target/paper-results/REPORT.md
echo "combined report: target/paper-results/REPORT.md"
